#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <sstream>

#include "model.hh"

namespace nova::lint
{

namespace
{

// ---------------------------------------------------------------------
// Analysis unit: the prepared text (pass 0) plus the symbol model
// (pass 1). Rules are pass 2.
// ---------------------------------------------------------------------

struct Unit
{
    PreparedFile p;
    FileModel m;
};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
suppressed(const PreparedFile &p, std::size_t line_idx,
           const std::string &rule)
{
    if (p.fileAllows.count(rule))
        return true;
    if (line_idx < p.allows.size() && p.allows[line_idx].count(rule))
        return true;
    if (line_idx > 0 && p.allows[line_idx - 1].count(rule))
        return true;
    return false;
}

void
emit(std::vector<Diagnostic> &out, const PreparedFile &p,
     std::size_t line_idx, const std::string &rule,
     const std::string &message)
{
    if (suppressed(p, line_idx, rule))
        return;
    out.push_back(Diagnostic{p.src->path, static_cast<int>(line_idx + 1),
                             rule, message});
}

/** Flag every line matching `re` with the same rule/message. */
void
flagLines(std::vector<Diagnostic> &out, const PreparedFile &p,
          const std::regex &re, const std::string &rule,
          const std::string &message)
{
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        if (std::regex_search(p.code[i], re))
            emit(out, p, i, rule, message);
    }
}

/** 0-based line of codeText offset `at`. */
std::size_t
lineOfOffset(const std::string &text, std::size_t at)
{
    return static_cast<std::size_t>(
        std::count(text.begin(),
                   text.begin() + static_cast<std::ptrdiff_t>(at), '\n'));
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/**
 * capture-default: `[&]`/`[=]` lambdas in event-scheduling files. A
 * defaulted reference capture handed to EventQueue::schedule dangles as
 * soon as the enclosing frame unwinds before the event fires; demanding
 * explicit captures makes every captured lifetime reviewable.
 */
void
ruleCaptureDefault(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    if (!p.eventFile)
        return;
    static const std::regex re(R"(\[\s*[&=]\s*[\],])");
    flagLines(out, p, re, "capture-default",
              "capture-default lambda in an event-scheduling file; list "
              "captures explicitly (by value for scheduled closures)");
}

/**
 * unordered-iteration: iterating an unordered container in an
 * event-scheduling file. Bucket order depends on hash seeding and
 * allocation history, so any event scheduled from such a loop executes
 * in nondeterministic order across runs.
 */
void
ruleUnorderedIteration(std::vector<Diagnostic> &out, const Unit &u,
                       const std::map<std::string, const Unit *> &by_path)
{
    const PreparedFile &p = u.p;
    if (!p.eventFile)
        return;
    // Names declared in this file, plus — for a .cc — members declared
    // in its same-stem header (iteration usually lives in the .cc).
    std::set<std::string> names = u.m.unorderedNames;
    if (!p.header) {
        auto it = by_path.find(p.stem + ".hh");
        if (it != by_path.end())
            names.insert(it->second->m.unorderedNames.begin(),
                         it->second->m.unorderedNames.end());
    }
    if (names.empty())
        return;
    for (const std::string &name : names) {
        // `.end()` alone is a find()-comparison idiom, not iteration;
        // iterating always needs some flavour of begin().
        const std::regex use(
            "(for\\s*\\([^;)]*:\\s*" + name + "\\b)|(\\b" + name +
            "\\s*\\.\\s*c?r?begin\\s*\\()");
        flagLines(out, p, use, "unordered-iteration",
                  "iteration over unordered container '" + name +
                      "' in an event-scheduling file; bucket order is "
                      "nondeterministic — use std::map/std::set or sort "
                      "before iterating");
    }
}

/**
 * wall-clock: entropy or wall-clock sources outside src/sim/random.*.
 * Every stochastic choice must flow through sim::Rng so a seed
 * reproduces a run bit-for-bit (the whole verify/replay harness relies
 * on this).
 */
void
ruleWallClock(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    if (endsWith(p.stem, "sim/random"))
        return;
    static const std::regex re(
        R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|\brandom_device\b)"
        R"(|\bmt19937|\bsystem_clock\b|\bsteady_clock\b)"
        R"(|\bhigh_resolution_clock\b|\bclock_gettime\b|\bgettimeofday\b)"
        R"(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))");
    flagLines(out, p, re, "wall-clock",
              "nondeterministic entropy/wall-clock source; route all "
              "randomness through sim::Rng (src/sim/random.*)");
}

/**
 * raw-exit: direct process termination outside the supervisor. A raw
 * exit()/abort() skips the crash bundle, the checkpoint-generation
 * error context and the nova_cli exit-code contract (0/1/2/3) that the
 * crash-recovery supervisor classifies restarts by — errors must
 * travel through sim::fatal()/sim::panic() instead. Exempt:
 * src/sim/supervise.* (the forked child's _exit after a failed exec is
 * the one legitimate raw termination — no C++ unwinding may run in the
 * child).
 */
void
ruleRawExit(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    if (endsWith(p.stem, "sim/supervise"))
        return;
    static const std::regex re(
        R"((?:\bstd\s*::\s*)?\b(?:exit|abort|quick_exit|_Exit)\s*\()"
        R"(|\b_exit\s*\()");
    flagLines(out, p, re, "raw-exit",
              "raw process termination; throw sim::fatal()/sim::panic() "
              "so the exit-code contract, crash bundle and supervisor "
              "classification stay intact");
}

/**
 * raw-new: raw `new` expressions. Components must be owned by
 * std::unique_ptr (std::make_unique or Simulator::create) so teardown
 * order is deterministic and leaks are impossible by construction.
 */
void
ruleRawNew(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    static const std::regex re(R"(\bnew\b\s*(?:\(|[A-Za-z_:<]))");
    flagLines(out, p, re, "raw-new",
              "raw 'new': own objects with std::make_unique / "
              "Simulator::create instead");
}

/**
 * tick-arith: unchecked arithmetic on Tick-valued expressions outside
 * the sim kernel. Tick is unsigned 64-bit picoseconds; a wrapped sum
 * silently schedules an event in the distant past/future. The checked
 * helpers (sim::tickAdd/tickSub/tickMul) assert instead.
 */
void
ruleTickArith(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    if (p.src->path.find("src/sim/") != std::string::npos)
        return;
    static const std::regex re(
        R"((\bnow\s*\(\s*\)|\bcurTick\b|\bclockEdge\s*\([^()]*\)|\bmaxTick\b)\s*[-+*][^=])");
    flagLines(out, p, re, "tick-arith",
              "raw arithmetic on a Tick-valued expression; use the "
              "overflow-checked sim::tickAdd/tickSub/tickMul helpers");
}

/**
 * unregistered-stat: a stats::Scalar/Histogram member declared in a
 * header but never registered (addScalar/addHistogram takes `&member`)
 * in the header or its same-stem `.cc`. Unregistered stats silently
 * vanish from dumps and from the differential-verify comparisons.
 */
void
ruleUnregisteredStat(std::vector<Diagnostic> &out, const PreparedFile &p,
                     const std::map<std::string, const Unit *> &by_path)
{
    if (!p.header)
        return;
    static const std::regex decl(
        R"(\bstats::(?:Scalar|Histogram)\s+([A-Za-z_]\w*)\s*;)");
    const PreparedFile *pair = nullptr;
    auto it = by_path.find(p.stem + ".cc");
    if (it != by_path.end())
        pair = &it->second->p;
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        auto begin = std::sregex_iterator(p.code[i].begin(),
                                          p.code[i].end(), decl);
        for (auto m = begin; m != std::sregex_iterator(); ++m) {
            const std::string name = (*m)[1].str();
            const std::regex reg("&\\s*" + name + "\\b");
            const bool registered =
                std::regex_search(p.codeText, reg) ||
                (pair && std::regex_search(pair->codeText, reg));
            if (!registered) {
                emit(out, p, i, "unregistered-stat",
                     "stat '" + name +
                         "' is declared but never registered with "
                         "addScalar/addHistogram in this header or its "
                         "paired .cc");
            }
        }
    }
}

/** using-namespace-std: `using namespace std` in a header. */
void
ruleUsingNamespaceStd(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    if (!p.header)
        return;
    static const std::regex re(R"(\busing\s+namespace\s+std\b)");
    flagLines(out, p, re, "using-namespace-std",
              "'using namespace std' in a header pollutes every includer; "
              "qualify names instead");
}

/**
 * virtual-dtor: a class that declares virtual member functions, has no
 * base class, and no virtual destructor. Deleting a derivative through
 * the base pointer is undefined behaviour.
 */
void
ruleVirtualDtor(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    const std::string &text = p.codeText;
    static const std::regex cls(R"(\b(class|struct)\s+([A-Za-z_]\w*))");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), cls);
         it != std::sregex_iterator(); ++it) {
        // Skip `enum class` and elaborated uses.
        const std::size_t at = static_cast<std::size_t>(it->position());
        std::size_t before = at;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 text[before - 1])))
            --before;
        if (before >= 4 && text.compare(before - 4, 4, "enum") == 0)
            continue;
        if (before >= 6 && text.compare(before - 6, 6, "friend") == 0)
            continue;

        // Scan the class head: find `{` (definition), bail on `;`
        // (forward declaration), `:` (has a base: destructor virtuality
        // is the base's concern), or template punctuation.
        std::size_t pos = at + it->length();
        bool open = false;
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '{') {
                open = true;
                break;
            }
            if (c == ';' || c == '>' || c == '(' || c == ',')
                break;
            if (c == ':') {
                if (pos + 1 < text.size() && text[pos + 1] == ':')
                    pos += 2;
                break; // base clause
            }
            if (!std::isspace(static_cast<unsigned char>(c)) &&
                !std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_')
                break;
            ++pos;
        }
        if (!open)
            continue;

        // Walk the body; only depth-1 tokens belong to this class.
        int depth = 1;
        std::size_t i = pos + 1;
        bool has_virtual = false;
        bool has_virtual_dtor = false;
        static const std::regex vtok(R"(^virtual\b(\s*~)?)");
        while (i < text.size() && depth > 0) {
            const char c = text[i];
            if (c == '{') {
                ++depth;
            } else if (c == '}') {
                --depth;
            } else if (depth == 1 && c == 'v') {
                std::smatch m;
                const std::string rest = text.substr(i, 48);
                if (std::regex_search(rest, m, vtok) &&
                    (i == 0 ||
                     (!std::isalnum(static_cast<unsigned char>(
                          text[i - 1])) &&
                      text[i - 1] != '_'))) {
                    has_virtual = true;
                    if (m[1].matched)
                        has_virtual_dtor = true;
                }
            }
            ++i;
        }
        if (has_virtual && !has_virtual_dtor) {
            emit(out, p, lineOfOffset(text, at), "virtual-dtor",
                 "polymorphic class '" + (*it)[2].str() +
                     "' has virtual functions but no virtual destructor");
        }
    }
}

/**
 * assert-side-effect: NOVA_ASSERT whose condition mutates state. The
 * assertion text compiles out in hardened builds, so a `++`/assignment
 * inside it changes behaviour between build modes.
 */
void
ruleAssertSideEffect(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    const std::string &text = p.codeText;
    const std::string needle = "NOVA_ASSERT";
    std::size_t at = 0;
    while ((at = text.find(needle, at)) != std::string::npos) {
        std::size_t pos = at + needle.size();
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos >= text.size() || text[pos] != '(') {
            at = pos;
            continue;
        }
        // Extract the balanced argument list.
        int depth = 0;
        std::size_t start = pos;
        std::size_t end = pos;
        for (; end < text.size(); ++end) {
            if (text[end] == '(')
                ++depth;
            else if (text[end] == ')' && --depth == 0)
                break;
        }
        const std::string args = text.substr(start, end - start);
        bool bad = args.find("++") != std::string::npos ||
                   args.find("--") != std::string::npos;
        for (std::size_t i = 1; !bad && i + 1 < args.size(); ++i) {
            if (args[i] != '=')
                continue;
            const char prev = args[i - 1];
            const char next = args[i + 1];
            if (next == '=') {
                ++i; // `==`
                continue;
            }
            if (prev == '=' || prev == '!' || prev == '<' || prev == '>')
                continue;
            bad = true;
        }
        if (bad) {
            emit(out, p, lineOfOffset(text, at), "assert-side-effect",
                 "NOVA_ASSERT condition has a side effect (++/--/"
                 "assignment); asserts must be removable without "
                 "changing behaviour");
        }
        at = end;
    }
}

/**
 * silent-catch: a catch block that swallows the exception. The
 * simulator reports its own bugs by throwing PanicError; a
 * `catch (...)` that does not rethrow turns that detection into silent
 * corruption, and an empty catch body discards the error entirely.
 * Typed catches with real handling are fine; `catch (...)` must
 * contain a `throw`.
 */
void
ruleSilentCatch(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    const std::string &text = p.codeText;
    static const std::regex kw(R"(\bcatch\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kw);
         it != std::sregex_iterator(); ++it) {
        const std::size_t at = static_cast<std::size_t>(it->position());

        // Balanced parameter list (starts at the '(' the match ends on).
        std::size_t pos = at + it->length() - 1;
        const std::size_t pstart = pos + 1;
        int depth = 0;
        for (; pos < text.size(); ++pos) {
            if (text[pos] == '(')
                ++depth;
            else if (text[pos] == ')' && --depth == 0)
                break;
        }
        if (pos >= text.size())
            continue;
        std::string param = text.substr(pstart, pos - pstart);
        param.erase(std::remove_if(param.begin(), param.end(),
                                   [](unsigned char c) {
                                       return std::isspace(c);
                                   }),
                    param.end());

        // Balanced handler body.
        const std::size_t open = text.find('{', pos);
        if (open == std::string::npos)
            continue;
        int braces = 1;
        std::size_t end = open + 1;
        while (end < text.size() && braces > 0) {
            if (text[end] == '{')
                ++braces;
            else if (text[end] == '}')
                --braces;
            ++end;
        }
        const std::string body = text.substr(open + 1, end - open - 2);

        const bool empty_body =
            body.find_first_not_of(" \t\n\r") == std::string::npos;
        static const std::regex rethrow(R"(\bthrow\b)");
        const bool rethrows = std::regex_search(body, rethrow);
        const std::size_t line_idx = lineOfOffset(text, at);
        if (empty_body) {
            emit(out, p, line_idx, "silent-catch",
                 "empty catch body discards the exception; handle it or "
                 "rethrow");
        } else if (param == "..." && !rethrows) {
            emit(out, p, line_idx, "silent-catch",
                 "catch (...) without a rethrow swallows PanicError/"
                 "FatalError; catch a specific type or add 'throw;'");
        }
    }
}

/**
 * include-guard: headers must open with a matching
 * `#ifndef NOVA_*_HH` / `#define` pair (no #pragma once), so double
 * inclusion is impossible and guard names stay greppable.
 */
void
ruleIncludeGuard(std::vector<Diagnostic> &out, const PreparedFile &p)
{
    if (!p.header)
        return;
    static const std::regex ifndef(R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+))");
    static const std::regex define(R"(^\s*#\s*define\s+([A-Za-z0-9_]+))");
    static const std::regex guard_name(R"(^NOVA_[A-Z0-9_]+_HH$)");
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(p.code[i], m, ifndef))
            continue;
        const std::string guard = m[1].str();
        std::string defined;
        for (std::size_t j = i + 1; j < p.code.size() && j <= i + 2; ++j) {
            std::smatch d;
            if (std::regex_search(p.code[j], d, define)) {
                defined = d[1].str();
                break;
            }
        }
        if (!std::regex_match(guard, guard_name) || defined != guard) {
            emit(out, p, i, "include-guard",
                 "header guard must be a matching #ifndef/#define pair "
                 "named NOVA_<PATH>_HH (got '" + guard + "')");
        }
        return; // only the first #ifndef is the guard
    }
    emit(out, p, 0, "include-guard",
         "header has no NOVA_*_HH include guard");
}

// ---------------------------------------------------------------------
// Flow-aware rule families (pass 2 over the FileModel).
// ---------------------------------------------------------------------

/** The paired unit (same stem, other extension), or nullptr. */
const Unit *
pairedUnit(const PreparedFile &p,
           const std::map<std::string, const Unit *> &by_path)
{
    for (const char *ext : {".hh", ".cc", ".hpp", ".cpp", ".h"}) {
        if (endsWith(p.src->path, ext))
            continue;
        auto it = by_path.find(p.stem + ext);
        if (it != by_path.end())
            return it->second;
    }
    return nullptr;
}

/**
 * First line (0-based) where `name` is used inside a function body of
 * `u`, other than `skip_line`; -1 when unused. main() is excluded: the
 * coordinator's startup path runs before any worker thread exists.
 */
int
findUseInFunctions(const Unit &u, const std::string &name, int skip_line)
{
    const std::regex use("\\b" + name + "\\b");
    for (const FunctionSpan &fn : u.m.functions) {
        if (fn.name == "main")
            continue;
        const std::string body = u.p.codeText.substr(
            fn.bodyBegin, fn.bodyEnd - fn.bodyBegin);
        for (auto it = std::sregex_iterator(body.begin(), body.end(), use);
             it != std::sregex_iterator(); ++it) {
            const int line = static_cast<int>(
                fn.bodyBeginLine +
                static_cast<int>(std::count(
                    body.begin(),
                    body.begin() + it->position(), '\n')));
            if (line != skip_line)
                return line;
        }
    }
    return -1;
}

/**
 * shard-safety: state that can be touched concurrently from several
 * shards' event streams.
 *
 * (a) A mutable namespace-scope/static variable declared in an
 *     event-scheduling or shard-aware file and used inside a function
 *     body is a cross-shard data race (and a determinism hazard even
 *     under a lock, because acquisition order varies), unless its
 *     declaration carries a shard-local or guarded-by(mutex)
 *     annotation.
 * (b) Scheduling directly on a queue obtained from
 *     ParallelScheduler::shard(...) — either inline or through an
 *     EventQueue& alias — bypasses the mailbox API; if the target is
 *     another shard, the post races the owner. Cross-shard work must go
 *     through postCross; genuinely same-shard scheduling is declared
 *     with a shard-local annotation.
 */
void
ruleShardSafety(std::vector<Diagnostic> &out, const Unit &u,
                const std::map<std::string, const Unit *> &by_path)
{
    const PreparedFile &p = u.p;
    const Unit *pair = pairedUnit(p, by_path);

    // (a) Mutable static-storage state in shard-visible code.
    if (p.eventFile || p.parallelFile) {
        for (const VarDecl &v : u.m.mutableStatics) {
            if (u.m.mutexes.count(v.name))
                continue; // the lock itself is the synchronization
            if (findAnnotation(u.m, v.line, Annotation::Kind::ShardLocal) ||
                findAnnotation(u.m, v.line, Annotation::Kind::GuardedBy))
                continue;
            int used = findUseInFunctions(u, v.name, v.line);
            if (used < 0 && pair)
                used = findUseInFunctions(*pair, v.name, -1);
            if (used < 0)
                continue;
            const char *what =
                v.storage == VarDecl::Storage::NamespaceScope
                    ? "namespace-scope variable"
                    : (v.storage == VarDecl::Storage::StaticLocal
                           ? "function-local static"
                           : "static data member");
            emit(out, p, v.line, "shard-safety",
                 std::string("mutable ") + what + " '" + v.name +
                     "' is touched from event-handler/worker code "
                     "(first use near line " + std::to_string(used + 1) +
                     "); confine it to one shard and annotate the "
                     "declaration with novalint: shard-local, or guard "
                     "it and annotate with novalint: guarded-by(<mutex>)");
        }
    }

    // (b) Direct scheduling on a shard queue outside the scheduler's
    //     own implementation.
    if (!p.parallelFile ||
        p.src->path.find("sim/parallel.") != std::string::npos)
        return;

    static const std::regex direct(
        R"(\.\s*shard\s*\([^;{]*\)\s*\.\s*schedule(In)?\s*\()");
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        if (!std::regex_search(p.code[i], direct))
            continue;
        if (findAnnotation(u.m, static_cast<int>(i),
                           Annotation::Kind::ShardLocal))
            continue;
        emit(out, p, i, "shard-safety",
             "direct EventQueue::schedule on a ParallelScheduler shard "
             "queue bypasses the mailbox API; cross-shard work must use "
             "postCross (same-shard scheduling is declared with a "
             "novalint: shard-local annotation)");
    }
    for (const QueueAlias &alias : u.m.queueAliases) {
        const std::regex call("\\b" + alias.name +
                              "\\s*\\.\\s*schedule(In)?\\s*\\(");
        const int lo = alias.functionIdx >= 0
                           ? u.m.functions[alias.functionIdx].bodyBeginLine
                           : 0;
        const int hi = alias.functionIdx >= 0
                           ? u.m.functions[alias.functionIdx].bodyEndLine
                           : static_cast<int>(p.code.size()) - 1;
        for (int i = lo; i <= hi &&
                         i < static_cast<int>(p.code.size()); ++i) {
            if (i == alias.line ||
                !std::regex_search(p.code[static_cast<std::size_t>(i)],
                                   call))
                continue;
            if (findAnnotation(u.m, i, Annotation::Kind::ShardLocal) ||
                findAnnotation(u.m, alias.line,
                               Annotation::Kind::ShardLocal))
                continue;
            emit(out, p, static_cast<std::size_t>(i), "shard-safety",
                 "'" + alias.name +
                     "' aliases a ParallelScheduler shard queue; "
                     "scheduling on it bypasses the mailbox API — use "
                     "postCross for cross-shard work, or declare the "
                     "call site novalint: shard-local");
        }
    }
}

/** Determinism sinks: where an iteration-ordered value becomes output. */
const std::regex &
sinkRegex()
{
    static const std::regex re(
        R"([Ff]ingerprint|\bstats::|\baddScalar\b|\baddHistogram\b|\bsaveGroupStats\b|CheckpointWriter|\.\s*(?:u64vec|f64vec|u64|f64|str|section)\s*\()");
    return re;
}

/** Names assigned (=, +=, …) or grown (push_back/insert) in `text`. */
void
collectAssignedNames(const std::string &text, std::set<std::string> &names)
{
    static const std::regex asg(
        R"(([A-Za-z_]\w*)(?:\s*\[[^\]]*\])?\s*([+\-*|^]?=))");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), asg);
         it != std::sregex_iterator(); ++it) {
        const std::size_t after = static_cast<std::size_t>(
            it->position() + it->length());
        if (after < text.size() && text[after] == '=')
            continue; // comparison (==, +==? never), not assignment
        if ((*it)[2].str() == "=") {
            // Reject `<=`, `>=`, `!=` — the char before the '=' sign.
            const std::size_t eq = after - 1;
            if (eq > 0 && (text[eq - 1] == '<' || text[eq - 1] == '>' ||
                           text[eq - 1] == '!'))
                continue;
        }
        names.insert((*it)[1].str());
    }
    static const std::regex grow(
        R"(([A-Za-z_]\w*)\s*\.\s*(?:push_back|emplace_back|insert|emplace)\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), grow);
         it != std::sregex_iterator(); ++it)
        names.insert((*it)[1].str());
}

/**
 * The span [start, end) of the statement or compound body following the
 * loop head whose parenthesis opens at `paren` in `text`.
 */
void
loopBodySpan(const std::string &text, std::size_t paren,
             std::size_t *start, std::size_t *end)
{
    int depth = 0;
    std::size_t i = paren;
    for (; i < text.size(); ++i) {
        if (text[i] == '(')
            ++depth;
        else if (text[i] == ')' && --depth == 0)
            break;
    }
    ++i;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    *start = i;
    if (i < text.size() && text[i] == '{') {
        int braces = 0;
        for (; i < text.size(); ++i) {
            if (text[i] == '{')
                ++braces;
            else if (text[i] == '}' && --braces == 0)
                break;
        }
        *end = std::min(i + 1, text.size());
    } else {
        const std::size_t semi = text.find(';', i);
        *end = semi == std::string::npos ? text.size() : semi + 1;
    }
}

/**
 * determinism-taint: iteration order of an unordered (hash-ordered) or
 * pointer-keyed (address-ordered) container flowing into a fingerprint,
 * statistics, or checkpoint writer within the same function — plus the
 * degenerate cases of hashing or printing raw pointer values, which
 * leak the allocator's address layout straight into output.
 */
void
ruleDeterminismTaint(std::vector<Diagnostic> &out, const Unit &u,
                     const std::map<std::string, const Unit *> &by_path)
{
    const PreparedFile &p = u.p;
    const Unit *pair = pairedUnit(p, by_path);

    std::set<std::string> unordered = u.m.unorderedNames;
    std::set<std::string> ptrkeyed = u.m.pointerKeyedNames;
    if (pair) {
        unordered.insert(pair->m.unorderedNames.begin(),
                         pair->m.unorderedNames.end());
        ptrkeyed.insert(pair->m.pointerKeyedNames.begin(),
                        pair->m.pointerKeyedNames.end());
    }

    const auto scanLoops = [&](const std::set<std::string> &names,
                               const char *order_kind) {
        for (const std::string &name : names) {
            const std::regex head(
                "(for\\s*(\\()[^;)]*:\\s*(?:\\*\\s*)?" + name +
                "\\b)|(\\b" + name + "\\s*\\.\\s*c?r?begin\\s*\\()");
            for (const FunctionSpan &fn : u.m.functions) {
                const std::string body = p.codeText.substr(
                    fn.bodyBegin, fn.bodyEnd - fn.bodyBegin);
                for (auto it = std::sregex_iterator(body.begin(),
                                                    body.end(), head);
                     it != std::sregex_iterator(); ++it) {
                    // Loop span: from the `for (` head when present,
                    // else the enclosing statement of the begin() call.
                    std::size_t start = 0;
                    std::size_t end = 0;
                    if ((*it)[2].matched) {
                        loopBodySpan(body,
                                     static_cast<std::size_t>(
                                         it->position(2)),
                                     &start, &end);
                    } else {
                        const std::size_t at = static_cast<std::size_t>(
                            it->position());
                        const std::size_t stmt_begin =
                            body.rfind(';', at);
                        start = stmt_begin == std::string::npos
                                    ? 0
                                    : stmt_begin + 1;
                        const std::size_t semi = body.find(';', at);
                        end = semi == std::string::npos ? body.size()
                                                        : semi + 1;
                    }
                    const std::string span =
                        body.substr(start, end - start);

                    // Sinks inside the iteration itself.
                    for (auto sit = std::sregex_iterator(
                             span.begin(), span.end(), sinkRegex());
                         sit != std::sregex_iterator(); ++sit) {
                        const std::size_t line =
                            fn.bodyBeginLine +
                            lineOfOffset(body,
                                         start + static_cast<std::size_t>(
                                                     sit->position()));
                        emit(out, p, line, "determinism-taint",
                             std::string("value ordered by ") +
                                 order_kind + " iteration of '" + name +
                                 "' reaches a fingerprint/stats/"
                                 "checkpoint sink; establish a canonical "
                                 "order (sort, or an ordered container) "
                                 "first");
                    }

                    // Values accumulated in the loop reaching a sink
                    // later in the same function. Walking the remainder
                    // line by line lets a std::sort() of the tainted
                    // value launder it: sorting IS the canonical order.
                    std::set<std::string> tainted;
                    collectAssignedNames(span, tainted);
                    tainted.erase(name);
                    if (tainted.empty())
                        continue;
                    std::istringstream rest(body.substr(end));
                    std::string rest_line;
                    std::size_t off = end;
                    while (std::getline(rest, rest_line)) {
                        const std::size_t line_off = off;
                        off += rest_line.size() + 1;
                        static const std::regex launder(
                            R"(\b(?:sort|stable_sort)\s*\()");
                        if (std::regex_search(rest_line, launder)) {
                            for (auto t = tainted.begin();
                                 t != tainted.end();) {
                                const std::regex tre("\\b" + *t +
                                                     "\\b");
                                if (std::regex_search(rest_line, tre))
                                    t = tainted.erase(t);
                                else
                                    ++t;
                            }
                            continue;
                        }
                        if (!std::regex_search(rest_line, sinkRegex()))
                            continue;
                        bool hit = false;
                        for (const std::string &t : tainted) {
                            const std::regex tre("\\b" + t + "\\b");
                            if (std::regex_search(rest_line, tre)) {
                                hit = true;
                                break;
                            }
                        }
                        if (!hit)
                            continue;
                        const std::size_t line =
                            fn.bodyBeginLine +
                            lineOfOffset(body, line_off);
                        emit(out, p, line, "determinism-taint",
                             std::string("value accumulated while "
                                         "iterating '") +
                                 name + "' (" + order_kind +
                                 " order) flows into a fingerprint/"
                                 "stats/checkpoint sink; establish a "
                                 "canonical order (e.g. std::sort) "
                                 "before it is consumed");
                    }
                }
            }
        }
    };
    scanLoops(unordered, "hash-bucket");
    scanLoops(ptrkeyed, "host-address");

    // Raw pointer identity leaking into output.
    static const std::regex hash_ptr(R"(std\s*::\s*hash\s*<[^>;]*\*)");
    flagLines(out, p, hash_ptr, "determinism-taint",
              "hashing a raw pointer value bakes the allocator's address "
              "layout (ASLR) into the result; hash a stable id instead");
    static const std::regex cast_ptr(
        R"(reinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>)");
    flagLines(out, p, cast_ptr, "determinism-taint",
              "converting a pointer to an integer exposes the host "
              "address; derive ids from construction order instead");
    static const std::regex print_fn(
        R"(printf|sprintf|snprintf|format|log)");
    for (std::size_t i = 0; i < p.raw.size(); ++i) {
        if (p.raw[i].find("%p") != std::string::npos &&
            std::regex_search(p.raw[i], print_fn)) {
            emit(out, p, i, "determinism-taint",
                 "printing a raw pointer (%p) leaks the host address "
                 "layout into output; print a stable id instead");
        }
    }
}

/**
 * reduction-order: floating-point accumulation inside loops of
 * functions reachable from per-shard merge paths. FP addition is not
 * associative; if the iteration order ever depends on thread count or
 * container order, merged statistics differ bit-for-bit between runs.
 * The accumulation must be declared to run in a canonical order via a
 * novalint: canonical-order annotation on the loop or the accumulation.
 */
void
ruleReductionOrder(std::vector<Diagnostic> &out, const Unit &u,
                   const std::map<std::string, const Unit *> &by_path)
{
    const PreparedFile &p = u.p;
    const Unit *pair = pairedUnit(p, by_path);
    if (u.m.functions.empty())
        return;

    // Seed merge-path functions: fold/merge-ish names, or bodies that
    // walk per-shard state.
    static const std::regex seed_name(
        R"(merge|fold|combine|reduc|aggregat|Merge|Fold|Combine|Reduc|Aggregat)");
    static const std::regex seed_body(
        R"(:\s*\w*[sS]hards?\b|[sS]hards?\s*\[|\bperShard\b)");
    std::vector<bool> merge_path(u.m.functions.size(), false);
    std::vector<std::string> bodies(u.m.functions.size());
    for (std::size_t i = 0; i < u.m.functions.size(); ++i) {
        const FunctionSpan &fn = u.m.functions[i];
        bodies[i] = p.codeText.substr(fn.bodyBegin,
                                      fn.bodyEnd - fn.bodyBegin);
        merge_path[i] = std::regex_search(fn.name, seed_name) ||
                        std::regex_search(bodies[i], seed_body);
    }
    // Propagate reachability one caller hop at a time: a function
    // called from a merge path is itself a merge path.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < u.m.functions.size(); ++f) {
            if (!merge_path[f])
                continue;
            for (std::size_t g = 0; g < u.m.functions.size(); ++g) {
                if (merge_path[g] || g == f)
                    continue;
                const std::string &callee = u.m.functions[g].name;
                if (callee.size() < 4)
                    continue; // too short to match reliably
                const std::regex call("\\b" + callee + "\\s*\\(");
                if (std::regex_search(bodies[f], call)) {
                    merge_path[g] = true;
                    changed = true;
                }
            }
        }
    }

    std::set<std::string> floats = u.m.floatNames;
    if (pair)
        floats.insert(pair->m.floatNames.begin(),
                      pair->m.floatNames.end());

    static const std::regex loop_head(R"(\b(?:for|while)\s*(\())");
    static const std::regex accum(
        R"(([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*|\[[^\]]*\])*)\s*[+\-]=)");
    static const std::regex float_rhs(
        R"(static_cast<\s*(?:double|float)\s*>|\d+\.\d|\d+\.[fF]?[;)\s])");
    static const std::regex float_accumulate(
        R"(\baccumulate\s*\([^;]*,\s*(?:0\.0|\d+\.\d*[fF]?)\s*[,)])");

    for (std::size_t f = 0; f < u.m.functions.size(); ++f) {
        if (!merge_path[f])
            continue;
        const FunctionSpan &fn = u.m.functions[f];
        const std::string &body = bodies[f];

        const auto annotated = [&](std::size_t body_off,
                                   std::size_t loop_off) {
            const int line = static_cast<int>(
                fn.bodyBeginLine + lineOfOffset(body, body_off));
            const int head = static_cast<int>(
                fn.bodyBeginLine + lineOfOffset(body, loop_off));
            return findAnnotation(u.m, line,
                                  Annotation::Kind::CanonicalOrder) ||
                   findAnnotation(u.m, head,
                                  Annotation::Kind::CanonicalOrder);
        };

        for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                            loop_head);
             it != std::sregex_iterator(); ++it) {
            std::size_t start = 0;
            std::size_t end = 0;
            loopBodySpan(body,
                         static_cast<std::size_t>(it->position(1)),
                         &start, &end);
            const std::string span = body.substr(start, end - start);
            const std::size_t loop_off =
                static_cast<std::size_t>(it->position());

            for (auto ait = std::sregex_iterator(span.begin(),
                                                 span.end(), accum);
                 ait != std::sregex_iterator(); ++ait) {
                const std::string lhs = (*ait)[1].str();
                // Base identifier: the final member/array component.
                std::string base = lhs;
                const std::size_t dot = base.find_last_of(".>");
                if (dot != std::string::npos)
                    base = base.substr(dot + 1);
                const std::size_t br = base.find('[');
                if (br != std::string::npos)
                    base = base.substr(0, br);
                // RHS up to the end of the statement.
                const std::size_t rhs_at = static_cast<std::size_t>(
                    ait->position() + ait->length());
                const std::size_t semi = span.find(';', rhs_at);
                const std::string rhs = span.substr(
                    rhs_at, (semi == std::string::npos ? span.size()
                                                       : semi) -
                                rhs_at);
                const bool fp = floats.count(base) > 0 ||
                                std::regex_search(rhs, float_rhs);
                if (!fp)
                    continue;
                const std::size_t off =
                    start + static_cast<std::size_t>(ait->position());
                if (annotated(off, loop_off))
                    continue;
                emit(out, p,
                     fn.bodyBeginLine + lineOfOffset(body, off),
                     "reduction-order",
                     "floating-point accumulation into '" + base +
                         "' in a loop reachable from a per-shard merge "
                         "path; FP addition is order-sensitive — "
                         "establish a canonical order and annotate the "
                         "loop with novalint: canonical-order");
            }
        }

        for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                            float_accumulate);
             it != std::sregex_iterator(); ++it) {
            const std::size_t off =
                static_cast<std::size_t>(it->position());
            if (annotated(off, off))
                continue;
            emit(out, p, fn.bodyBeginLine + lineOfOffset(body, off),
                 "reduction-order",
                 "std::accumulate over floating-point values in a "
                 "per-shard merge path; FP addition is order-sensitive "
                 "— establish a canonical order and annotate with "
                 "novalint: canonical-order");
        }
    }
}

/**
 * bad-annotation: the annotation grammar is machine-checked. An
 * annotation that names an unknown directive, a guarded-by whose mutex
 * is not declared in the translation unit, or an annotation attached to
 * nothing the analyzer recognizes is itself an error — a stale or
 * misspelled annotation silently disables a real check.
 */
void
ruleBadAnnotation(std::vector<Diagnostic> &out, const Unit &u,
                  const std::map<std::string, const Unit *> &by_path)
{
    const PreparedFile &p = u.p;
    const Unit *pair = pairedUnit(p, by_path);

    const auto declAt = [&](int line) {
        for (const VarDecl &v : u.m.mutableStatics)
            if (v.line == line)
                return true;
        return false;
    };
    const auto aliasAt = [&](int line) {
        for (const QueueAlias &a : u.m.queueAliases)
            if (a.line == line)
                return true;
        return false;
    };

    static const std::regex sched(R"(\.\s*(schedule(In)?|shard)\s*\()");
    static const std::regex reduction(
        R"([+\-]=|\baccumulate\b|\b(for|while)\s*\()");

    for (const Annotation &a : u.m.annotations) {
        if (a.kind == Annotation::Kind::Unknown) {
            emit(out, p, a.line, "bad-annotation",
                 "unknown novalint annotation '" + a.name +
                     "'; the grammar is shard-local, guarded-by(<mutex>)"
                     ", canonical-order (docs/STATIC_ANALYSIS.md)");
            continue;
        }
        if (a.kind == Annotation::Kind::GuardedBy) {
            if (a.malformed) {
                emit(out, p, a.line, "bad-annotation",
                     "guarded-by needs a parenthesized mutex name: "
                     "guarded-by(<mutex>)");
                continue;
            }
            if (u.m.mutexes.count(a.arg) == 0 &&
                (!pair || pair->m.mutexes.count(a.arg) == 0)) {
                emit(out, p, a.line, "bad-annotation",
                     "guarded-by(" + a.arg +
                         ") names no mutex declared in this translation "
                         "unit; the annotation guards nothing");
                continue;
            }
        }

        // Attachment: the annotation's line or the line below must hold
        // something the annotation can apply to.
        bool attached = false;
        for (int line = a.line; line <= a.line + 1 &&
                                line < static_cast<int>(p.code.size());
             ++line) {
            switch (a.kind) {
            case Annotation::Kind::ShardLocal:
                attached = declAt(line) || aliasAt(line) ||
                           std::regex_search(
                               p.code[static_cast<std::size_t>(line)],
                               sched);
                break;
            case Annotation::Kind::GuardedBy:
                attached = declAt(line);
                break;
            case Annotation::Kind::CanonicalOrder:
                attached = std::regex_search(
                    p.code[static_cast<std::size_t>(line)], reduction);
                break;
            case Annotation::Kind::Unknown:
                break;
            }
            if (attached)
                break;
        }
        if (!attached) {
            emit(out, p, a.line, "bad-annotation",
                 "annotation '" + a.name +
                     "' attaches to no declaration, shard-queue "
                     "schedule, or reduction the analyzer recognizes "
                     "on this or the next line");
        }
    }
}

} // namespace

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "capture-default",  "unordered-iteration", "wall-clock",
        "raw-exit",         "raw-new",             "tick-arith",
        "unregistered-stat",
        "using-namespace-std", "virtual-dtor",     "assert-side-effect",
        "include-guard",    "silent-catch",        "shard-safety",
        "determinism-taint", "reduction-order",    "bad-annotation",
    };
    return names;
}

std::string
ruleDescription(const std::string &rule)
{
    static const std::map<std::string, std::string> descs = {
        {"capture-default",
         "Capture-default lambda in an event-scheduling file"},
        {"unordered-iteration",
         "Iteration over an unordered container in an event-scheduling "
         "file"},
        {"wall-clock",
         "Nondeterministic entropy or wall-clock source outside "
         "sim::Rng"},
        {"raw-exit",
         "Raw exit()/abort() bypassing the exit-code contract and "
         "crash bundle"},
        {"raw-new", "Raw new expression instead of owned allocation"},
        {"tick-arith",
         "Unchecked arithmetic on a Tick-valued expression"},
        {"unregistered-stat",
         "Statistic declared but never registered with its group"},
        {"using-namespace-std", "using namespace std in a header"},
        {"virtual-dtor",
         "Polymorphic class without a virtual destructor"},
        {"assert-side-effect",
         "NOVA_ASSERT condition with a side effect"},
        {"include-guard", "Missing or misnamed NOVA_*_HH include guard"},
        {"silent-catch", "Catch handler that swallows the exception"},
        {"shard-safety",
         "Mutable shared state or direct shard-queue scheduling in "
         "cross-shard code"},
        {"determinism-taint",
         "Hash/address-ordered value flowing into a fingerprint, stats, "
         "or checkpoint sink"},
        {"reduction-order",
         "Order-sensitive floating-point reduction in a per-shard merge "
         "path"},
        {"bad-annotation",
         "Malformed, unknown, or unattached novalint annotation"},
    };
    auto it = descs.find(rule);
    return it == descs.end() ? std::string("nova-lint rule") : it->second;
}

std::vector<Diagnostic>
lintFiles(const std::vector<SourceFile> &files,
          const std::set<std::string> &enabled)
{
    std::vector<Unit> units;
    units.reserve(files.size());
    for (const SourceFile &f : files) {
        Unit u;
        u.p = prepareFile(f);
        u.m = buildModel(u.p);
        units.push_back(std::move(u));
    }

    std::map<std::string, const Unit *> by_path;
    for (const Unit &u : units)
        by_path[u.p.src->path] = &u;

    const auto on = [&enabled](const char *rule) {
        return enabled.empty() || enabled.count(rule) > 0;
    };

    std::vector<Diagnostic> out;
    for (const Unit &u : units) {
        const PreparedFile &p = u.p;
        if (on("capture-default"))
            ruleCaptureDefault(out, p);
        if (on("unordered-iteration"))
            ruleUnorderedIteration(out, u, by_path);
        if (on("wall-clock"))
            ruleWallClock(out, p);
        if (on("raw-exit"))
            ruleRawExit(out, p);
        if (on("raw-new"))
            ruleRawNew(out, p);
        if (on("tick-arith"))
            ruleTickArith(out, p);
        if (on("unregistered-stat"))
            ruleUnregisteredStat(out, p, by_path);
        if (on("using-namespace-std"))
            ruleUsingNamespaceStd(out, p);
        if (on("virtual-dtor"))
            ruleVirtualDtor(out, p);
        if (on("assert-side-effect"))
            ruleAssertSideEffect(out, p);
        if (on("include-guard"))
            ruleIncludeGuard(out, p);
        if (on("silent-catch"))
            ruleSilentCatch(out, p);
        if (on("shard-safety"))
            ruleShardSafety(out, u, by_path);
        if (on("determinism-taint"))
            ruleDeterminismTaint(out, u, by_path);
        if (on("reduction-order"))
            ruleReductionOrder(out, u, by_path);
        if (on("bad-annotation"))
            ruleBadAnnotation(out, u, by_path);
    }

    std::sort(out.begin(), out.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const Diagnostic &a, const Diagnostic &b) {
                              return a.file == b.file &&
                                     a.line == b.line &&
                                     a.rule == b.rule &&
                                     a.message == b.message;
                          }),
              out.end());
    return out;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream os;
    os << d.file << ":" << d.line << ": error: [" << d.rule << "] "
       << d.message;
    return os.str();
}

} // namespace nova::lint
