#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <sstream>

namespace nova::lint
{

namespace
{

// ---------------------------------------------------------------------
// File preparation: split into lines, strip comments/strings, collect
// suppression directives, classify the file.
// ---------------------------------------------------------------------

struct Prepared
{
    const SourceFile *src = nullptr;
    std::vector<std::string> raw;  ///< Original lines.
    std::vector<std::string> code; ///< Comment/string-stripped lines.
    std::string codeText;          ///< code joined with '\n'.
    std::vector<std::set<std::string>> allows; ///< Per-line allow(rule).
    std::set<std::string> fileAllows;          ///< allow-file(rule).
    bool header = false;
    bool eventFile = false; ///< Interacts with the event machinery.
    std::string stem;       ///< Path without extension (for pairing).
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Parse every `novalint:allow(...)`/`allow-file(...)` on a raw line. */
void
collectAllows(const std::string &line, std::set<std::string> &line_rules,
              std::set<std::string> &file_rules)
{
    static const std::regex re(
        R"(novalint:allow(-file)?\(([A-Za-z0-9_,\- ]+)\))");
    auto begin = std::sregex_iterator(line.begin(), line.end(), re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const bool whole_file = (*it)[1].matched;
        std::stringstream names((*it)[2].str());
        std::string name;
        while (std::getline(names, name, ',')) {
            name.erase(std::remove(name.begin(), name.end(), ' '),
                       name.end());
            if (name.empty())
                continue;
            (whole_file ? file_rules : line_rules).insert(name);
        }
    }
}

/**
 * Blank out comments and literal contents, preserving line structure and
 * the quote characters themselves (so `m["k"]` cannot look like a lambda
 * introducer). Handles line/block comments, string and char literals with
 * escapes, and digit separators (1'000).
 */
std::vector<std::string>
stripCode(const std::vector<std::string> &raw)
{
    std::vector<std::string> out;
    bool in_block = false;
    for (const std::string &line : raw) {
        std::string s;
        s.reserve(line.size());
        char quote = 0; // active literal delimiter, or 0
        char prev_code = 0;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char n = i + 1 < line.size() ? line[i + 1] : 0;
            if (in_block) {
                if (c == '*' && n == '/') {
                    in_block = false;
                    s += "  ";
                    ++i;
                } else {
                    s += ' ';
                }
                continue;
            }
            if (quote) {
                if (c == '\\') {
                    s += "  ";
                    ++i;
                } else if (c == quote) {
                    quote = 0;
                    s += c;
                } else {
                    s += ' ';
                }
                continue;
            }
            if (c == '/' && n == '/')
                break; // rest of line is a comment
            if (c == '/' && n == '*') {
                in_block = true;
                s += "  ";
                ++i;
                continue;
            }
            if (c == '"' ||
                (c == '\'' &&
                 !(std::isalnum(static_cast<unsigned char>(prev_code)) ||
                   prev_code == '_'))) {
                quote = c;
                s += c;
                prev_code = c;
                continue;
            }
            s += c;
            if (!std::isspace(static_cast<unsigned char>(c)))
                prev_code = c;
        }
        out.push_back(s);
    }
    return out;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Prepared
prepare(const SourceFile &src)
{
    Prepared p;
    p.src = &src;
    p.raw = splitLines(src.text);
    p.code = stripCode(p.raw);
    p.allows.resize(p.raw.size());
    for (std::size_t i = 0; i < p.raw.size(); ++i)
        collectAllows(p.raw[i], p.allows[i], p.fileAllows);
    for (const std::string &line : p.code) {
        p.codeText += line;
        p.codeText += '\n';
    }
    p.header = endsWith(src.path, ".hh") || endsWith(src.path, ".hpp") ||
               endsWith(src.path, ".h");
    const std::size_t dot = src.path.rfind('.');
    p.stem = dot == std::string::npos ? src.path : src.path.substr(0, dot);

    // A file participates in event scheduling when it names the event
    // machinery or includes the kernel headers; only such files can turn
    // lexical nondeterminism into schedule nondeterminism.
    static const std::regex ev(R"(\b(EventQueue|SelfEvent)\b)");
    p.eventFile = std::regex_search(p.codeText, ev);
    if (!p.eventFile) {
        static const std::regex inc(
            "#\\s*include\\s*\"sim/(event_queue|sim_object|simulator)"
            "\\.hh\"");
        for (const std::string &line : p.raw) {
            if (std::regex_search(line, inc)) {
                p.eventFile = true;
                break;
            }
        }
    }
    return p;
}

bool
suppressed(const Prepared &p, std::size_t line_idx, const std::string &rule)
{
    if (p.fileAllows.count(rule))
        return true;
    if (line_idx < p.allows.size() && p.allows[line_idx].count(rule))
        return true;
    if (line_idx > 0 && p.allows[line_idx - 1].count(rule))
        return true;
    return false;
}

void
emit(std::vector<Diagnostic> &out, const Prepared &p, std::size_t line_idx,
     const std::string &rule, const std::string &message)
{
    if (suppressed(p, line_idx, rule))
        return;
    out.push_back(Diagnostic{p.src->path, static_cast<int>(line_idx + 1),
                             rule, message});
}

/** Flag every line matching `re` with the same rule/message. */
void
flagLines(std::vector<Diagnostic> &out, const Prepared &p,
          const std::regex &re, const std::string &rule,
          const std::string &message)
{
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        if (std::regex_search(p.code[i], re))
            emit(out, p, i, rule, message);
    }
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/**
 * capture-default: `[&]`/`[=]` lambdas in event-scheduling files. A
 * defaulted reference capture handed to EventQueue::schedule dangles as
 * soon as the enclosing frame unwinds before the event fires; demanding
 * explicit captures makes every captured lifetime reviewable.
 */
void
ruleCaptureDefault(std::vector<Diagnostic> &out, const Prepared &p)
{
    if (!p.eventFile)
        return;
    static const std::regex re(R"(\[\s*[&=]\s*[\],])");
    flagLines(out, p, re, "capture-default",
              "capture-default lambda in an event-scheduling file; list "
              "captures explicitly (by value for scheduled closures)");
}

/**
 * unordered-iteration: iterating an unordered container in an
 * event-scheduling file. Bucket order depends on hash seeding and
 * allocation history, so any event scheduled from such a loop executes
 * in nondeterministic order across runs.
 */
void
collectUnorderedNames(const std::string &text, std::set<std::string> &names)
{
    static const std::regex decl(R"(\bunordered_(?:map|set)\s*<)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
         it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position()) +
                          it->length();
        int depth = 1;
        while (pos < text.size() && depth > 0) {
            if (text[pos] == '<')
                ++depth;
            else if (text[pos] == '>')
                --depth;
            ++pos;
        }
        static const std::regex name_re(R"(^\s*&?\s*([A-Za-z_]\w*))");
        std::smatch m;
        const std::string rest = text.substr(pos, 128);
        if (std::regex_search(rest, m, name_re))
            names.insert(m[1].str());
    }
}

void
ruleUnorderedIteration(std::vector<Diagnostic> &out, const Prepared &p,
                       const std::map<std::string, const Prepared *> &by_path)
{
    if (!p.eventFile)
        return;
    // Names declared in this file, plus — for a .cc — members declared
    // in its same-stem header (iteration usually lives in the .cc).
    std::set<std::string> names;
    collectUnorderedNames(p.codeText, names);
    if (!p.header) {
        auto it = by_path.find(p.stem + ".hh");
        if (it != by_path.end())
            collectUnorderedNames(it->second->codeText, names);
    }
    if (names.empty())
        return;
    for (const std::string &name : names) {
        // `.end()` alone is a find()-comparison idiom, not iteration;
        // iterating always needs some flavour of begin().
        const std::regex use(
            "(for\\s*\\([^;)]*:\\s*" + name + "\\b)|(\\b" + name +
            "\\s*\\.\\s*c?r?begin\\s*\\()");
        flagLines(out, p, use, "unordered-iteration",
                  "iteration over unordered container '" + name +
                      "' in an event-scheduling file; bucket order is "
                      "nondeterministic — use std::map/std::set or sort "
                      "before iterating");
    }
}

/**
 * wall-clock: entropy or wall-clock sources outside src/sim/random.*.
 * Every stochastic choice must flow through sim::Rng so a seed
 * reproduces a run bit-for-bit (the whole verify/replay harness relies
 * on this).
 */
void
ruleWallClock(std::vector<Diagnostic> &out, const Prepared &p)
{
    if (endsWith(p.stem, "sim/random"))
        return;
    static const std::regex re(
        R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|\brandom_device\b)"
        R"(|\bmt19937|\bsystem_clock\b|\bsteady_clock\b)"
        R"(|\bhigh_resolution_clock\b|\bclock_gettime\b|\bgettimeofday\b)"
        R"(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))");
    flagLines(out, p, re, "wall-clock",
              "nondeterministic entropy/wall-clock source; route all "
              "randomness through sim::Rng (src/sim/random.*)");
}

/**
 * raw-new: raw `new` expressions. Components must be owned by
 * std::unique_ptr (std::make_unique or Simulator::create) so teardown
 * order is deterministic and leaks are impossible by construction.
 */
void
ruleRawNew(std::vector<Diagnostic> &out, const Prepared &p)
{
    static const std::regex re(R"(\bnew\b\s*(?:\(|[A-Za-z_:<]))");
    flagLines(out, p, re, "raw-new",
              "raw 'new': own objects with std::make_unique / "
              "Simulator::create instead");
}

/**
 * tick-arith: unchecked arithmetic on Tick-valued expressions outside
 * the sim kernel. Tick is unsigned 64-bit picoseconds; a wrapped sum
 * silently schedules an event in the distant past/future. The checked
 * helpers (sim::tickAdd/tickSub/tickMul) assert instead.
 */
void
ruleTickArith(std::vector<Diagnostic> &out, const Prepared &p)
{
    if (p.src->path.find("src/sim/") != std::string::npos)
        return;
    static const std::regex re(
        R"((\bnow\s*\(\s*\)|\bcurTick\b|\bclockEdge\s*\([^()]*\)|\bmaxTick\b)\s*[-+*][^=])");
    flagLines(out, p, re, "tick-arith",
              "raw arithmetic on a Tick-valued expression; use the "
              "overflow-checked sim::tickAdd/tickSub/tickMul helpers");
}

/**
 * unregistered-stat: a stats::Scalar/Histogram member declared in a
 * header but never registered (addScalar/addHistogram takes `&member`)
 * in the header or its same-stem `.cc`. Unregistered stats silently
 * vanish from dumps and from the differential-verify comparisons.
 */
void
ruleUnregisteredStat(std::vector<Diagnostic> &out, const Prepared &p,
                     const std::map<std::string, const Prepared *> &by_stem)
{
    if (!p.header)
        return;
    static const std::regex decl(
        R"(\bstats::(?:Scalar|Histogram)\s+([A-Za-z_]\w*)\s*;)");
    const Prepared *pair = nullptr;
    auto it = by_stem.find(p.stem + ".cc");
    if (it != by_stem.end())
        pair = it->second;
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        auto begin = std::sregex_iterator(p.code[i].begin(),
                                          p.code[i].end(), decl);
        for (auto m = begin; m != std::sregex_iterator(); ++m) {
            const std::string name = (*m)[1].str();
            const std::regex reg("&\\s*" + name + "\\b");
            const bool registered =
                std::regex_search(p.codeText, reg) ||
                (pair && std::regex_search(pair->codeText, reg));
            if (!registered) {
                emit(out, p, i, "unregistered-stat",
                     "stat '" + name +
                         "' is declared but never registered with "
                         "addScalar/addHistogram in this header or its "
                         "paired .cc");
            }
        }
    }
}

/** using-namespace-std: `using namespace std` in a header. */
void
ruleUsingNamespaceStd(std::vector<Diagnostic> &out, const Prepared &p)
{
    if (!p.header)
        return;
    static const std::regex re(R"(\busing\s+namespace\s+std\b)");
    flagLines(out, p, re, "using-namespace-std",
              "'using namespace std' in a header pollutes every includer; "
              "qualify names instead");
}

/**
 * virtual-dtor: a class that declares virtual member functions, has no
 * base class, and no virtual destructor. Deleting a derivative through
 * the base pointer is undefined behaviour.
 */
void
ruleVirtualDtor(std::vector<Diagnostic> &out, const Prepared &p)
{
    const std::string &text = p.codeText;
    static const std::regex cls(R"(\b(class|struct)\s+([A-Za-z_]\w*))");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), cls);
         it != std::sregex_iterator(); ++it) {
        // Skip `enum class` and elaborated uses.
        const std::size_t at = static_cast<std::size_t>(it->position());
        std::size_t before = at;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 text[before - 1])))
            --before;
        if (before >= 4 && text.compare(before - 4, 4, "enum") == 0)
            continue;
        if (before >= 6 && text.compare(before - 6, 6, "friend") == 0)
            continue;

        // Scan the class head: find `{` (definition), bail on `;`
        // (forward declaration), `:` (has a base: destructor virtuality
        // is the base's concern), or template punctuation.
        std::size_t pos = at + it->length();
        bool open = false;
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '{') {
                open = true;
                break;
            }
            if (c == ';' || c == '>' || c == '(' || c == ',')
                break;
            if (c == ':') {
                if (pos + 1 < text.size() && text[pos + 1] == ':')
                    pos += 2;
                break; // base clause
            }
            if (!std::isspace(static_cast<unsigned char>(c)) &&
                !std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_')
                break;
            ++pos;
        }
        if (!open)
            continue;

        // Walk the body; only depth-1 tokens belong to this class.
        int depth = 1;
        std::size_t i = pos + 1;
        bool has_virtual = false;
        bool has_virtual_dtor = false;
        static const std::regex vtok(R"(^virtual\b(\s*~)?)");
        while (i < text.size() && depth > 0) {
            const char c = text[i];
            if (c == '{') {
                ++depth;
            } else if (c == '}') {
                --depth;
            } else if (depth == 1 && c == 'v') {
                std::smatch m;
                const std::string rest = text.substr(i, 48);
                if (std::regex_search(rest, m, vtok) &&
                    (i == 0 ||
                     (!std::isalnum(static_cast<unsigned char>(
                          text[i - 1])) &&
                      text[i - 1] != '_'))) {
                    has_virtual = true;
                    if (m[1].matched)
                        has_virtual_dtor = true;
                }
            }
            ++i;
        }
        if (has_virtual && !has_virtual_dtor) {
            const std::size_t line_idx = static_cast<std::size_t>(
                std::count(text.begin(), text.begin() + at, '\n'));
            emit(out, p, line_idx, "virtual-dtor",
                 "polymorphic class '" + (*it)[2].str() +
                     "' has virtual functions but no virtual destructor");
        }
    }
}

/**
 * assert-side-effect: NOVA_ASSERT whose condition mutates state. The
 * assertion text compiles out in hardened builds, so a `++`/assignment
 * inside it changes behaviour between build modes.
 */
void
ruleAssertSideEffect(std::vector<Diagnostic> &out, const Prepared &p)
{
    const std::string &text = p.codeText;
    const std::string needle = "NOVA_ASSERT";
    std::size_t at = 0;
    while ((at = text.find(needle, at)) != std::string::npos) {
        std::size_t pos = at + needle.size();
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos >= text.size() || text[pos] != '(') {
            at = pos;
            continue;
        }
        // Extract the balanced argument list.
        int depth = 0;
        std::size_t start = pos;
        std::size_t end = pos;
        for (; end < text.size(); ++end) {
            if (text[end] == '(')
                ++depth;
            else if (text[end] == ')' && --depth == 0)
                break;
        }
        const std::string args = text.substr(start, end - start);
        bool bad = args.find("++") != std::string::npos ||
                   args.find("--") != std::string::npos;
        for (std::size_t i = 1; !bad && i + 1 < args.size(); ++i) {
            if (args[i] != '=')
                continue;
            const char prev = args[i - 1];
            const char next = args[i + 1];
            if (next == '=') {
                ++i; // `==`
                continue;
            }
            if (prev == '=' || prev == '!' || prev == '<' || prev == '>')
                continue;
            bad = true;
        }
        if (bad) {
            const std::size_t line_idx = static_cast<std::size_t>(
                std::count(text.begin(), text.begin() + at, '\n'));
            emit(out, p, line_idx, "assert-side-effect",
                 "NOVA_ASSERT condition has a side effect (++/--/"
                 "assignment); asserts must be removable without "
                 "changing behaviour");
        }
        at = end;
    }
}

/**
 * silent-catch: a catch block that swallows the exception. The
 * simulator reports its own bugs by throwing PanicError; a
 * `catch (...)` that does not rethrow turns that detection into silent
 * corruption, and an empty catch body discards the error entirely.
 * Typed catches with real handling are fine; `catch (...)` must
 * contain a `throw`.
 */
void
ruleSilentCatch(std::vector<Diagnostic> &out, const Prepared &p)
{
    const std::string &text = p.codeText;
    static const std::regex kw(R"(\bcatch\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kw);
         it != std::sregex_iterator(); ++it) {
        const std::size_t at = static_cast<std::size_t>(it->position());

        // Balanced parameter list (starts at the '(' the match ends on).
        std::size_t pos = at + it->length() - 1;
        const std::size_t pstart = pos + 1;
        int depth = 0;
        for (; pos < text.size(); ++pos) {
            if (text[pos] == '(')
                ++depth;
            else if (text[pos] == ')' && --depth == 0)
                break;
        }
        if (pos >= text.size())
            continue;
        std::string param = text.substr(pstart, pos - pstart);
        param.erase(std::remove_if(param.begin(), param.end(),
                                   [](unsigned char c) {
                                       return std::isspace(c);
                                   }),
                    param.end());

        // Balanced handler body.
        const std::size_t open = text.find('{', pos);
        if (open == std::string::npos)
            continue;
        int braces = 1;
        std::size_t end = open + 1;
        while (end < text.size() && braces > 0) {
            if (text[end] == '{')
                ++braces;
            else if (text[end] == '}')
                --braces;
            ++end;
        }
        const std::string body = text.substr(open + 1, end - open - 2);

        const bool empty_body =
            body.find_first_not_of(" \t\n\r") == std::string::npos;
        static const std::regex rethrow(R"(\bthrow\b)");
        const bool rethrows = std::regex_search(body, rethrow);
        const std::size_t line_idx = static_cast<std::size_t>(
            std::count(text.begin(), text.begin() + at, '\n'));
        if (empty_body) {
            emit(out, p, line_idx, "silent-catch",
                 "empty catch body discards the exception; handle it or "
                 "rethrow");
        } else if (param == "..." && !rethrows) {
            emit(out, p, line_idx, "silent-catch",
                 "catch (...) without a rethrow swallows PanicError/"
                 "FatalError; catch a specific type or add 'throw;'");
        }
    }
}

/**
 * include-guard: headers must open with a matching
 * `#ifndef NOVA_*_HH` / `#define` pair (no #pragma once), so double
 * inclusion is impossible and guard names stay greppable.
 */
void
ruleIncludeGuard(std::vector<Diagnostic> &out, const Prepared &p)
{
    if (!p.header)
        return;
    static const std::regex ifndef(R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+))");
    static const std::regex define(R"(^\s*#\s*define\s+([A-Za-z0-9_]+))");
    static const std::regex guard_name(R"(^NOVA_[A-Z0-9_]+_HH$)");
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(p.code[i], m, ifndef))
            continue;
        const std::string guard = m[1].str();
        std::string defined;
        for (std::size_t j = i + 1; j < p.code.size() && j <= i + 2; ++j) {
            std::smatch d;
            if (std::regex_search(p.code[j], d, define)) {
                defined = d[1].str();
                break;
            }
        }
        if (!std::regex_match(guard, guard_name) || defined != guard) {
            emit(out, p, i, "include-guard",
                 "header guard must be a matching #ifndef/#define pair "
                 "named NOVA_<PATH>_HH (got '" + guard + "')");
        }
        return; // only the first #ifndef is the guard
    }
    emit(out, p, 0, "include-guard",
         "header has no NOVA_*_HH include guard");
}

} // namespace

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "capture-default",  "unordered-iteration", "wall-clock",
        "raw-new",          "tick-arith",          "unregistered-stat",
        "using-namespace-std", "virtual-dtor",     "assert-side-effect",
        "include-guard",    "silent-catch",
    };
    return names;
}

std::vector<Diagnostic>
lintFiles(const std::vector<SourceFile> &files,
          const std::set<std::string> &enabled)
{
    std::vector<Prepared> prepared;
    prepared.reserve(files.size());
    for (const SourceFile &f : files)
        prepared.push_back(prepare(f));

    std::map<std::string, const Prepared *> by_path;
    for (const Prepared &p : prepared)
        by_path[p.src->path] = &p;

    const auto on = [&enabled](const char *rule) {
        return enabled.empty() || enabled.count(rule) > 0;
    };

    std::vector<Diagnostic> out;
    for (const Prepared &p : prepared) {
        if (on("capture-default"))
            ruleCaptureDefault(out, p);
        if (on("unordered-iteration"))
            ruleUnorderedIteration(out, p, by_path);
        if (on("wall-clock"))
            ruleWallClock(out, p);
        if (on("raw-new"))
            ruleRawNew(out, p);
        if (on("tick-arith"))
            ruleTickArith(out, p);
        if (on("unregistered-stat"))
            ruleUnregisteredStat(out, p, by_path);
        if (on("using-namespace-std"))
            ruleUsingNamespaceStd(out, p);
        if (on("virtual-dtor"))
            ruleVirtualDtor(out, p);
        if (on("assert-side-effect"))
            ruleAssertSideEffect(out, p);
        if (on("include-guard"))
            ruleIncludeGuard(out, p);
        if (on("silent-catch"))
            ruleSilentCatch(out, p);
    }

    std::sort(out.begin(), out.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream os;
    os << d.file << ":" << d.line << ": error: [" << d.rule << "] "
       << d.message;
    return os.str();
}

} // namespace nova::lint
