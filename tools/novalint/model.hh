/**
 * @file
 * nova-lint pass 1: the per-translation-unit symbol model.
 *
 * The flow-aware rule families (shard-safety, determinism-taint,
 * reduction-order; see docs/STATIC_ANALYSIS.md) need more than a line
 * regex: they reason about *where* a name was declared and *where* it
 * is used. This header defines that model and the single function that
 * builds it from a prepared source file:
 *
 *  - scope tracking: every brace is classified (namespace, class,
 *    function, plain block) so each line knows its innermost scope;
 *  - function spans: name + body extent of every function definition,
 *    including class members and constructors with init lists;
 *  - declarations: mutable namespace-scope/static variables, unordered
 *    containers, pointer-keyed ordered containers, float-typed names,
 *    declared mutexes, and EventQueue references aliased from
 *    ParallelScheduler::shard();
 *  - annotations: the machine-checked `novalint:` annotation grammar
 *    (`shard-local`, `guarded-by(<mutex>)`, `canonical-order`).
 *
 * Everything here is lexical — comment/string stripped, brace matched,
 * no real parse — which is exactly enough for the rule families and
 * keeps the checker dependency-free and fast.
 */

#ifndef NOVA_NOVALINT_MODEL_HH
#define NOVA_NOVALINT_MODEL_HH

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace nova::lint
{

/** A source file after comment/string stripping and directive capture. */
struct PreparedFile
{
    const SourceFile *src = nullptr;
    std::vector<std::string> raw;  ///< Original lines.
    std::vector<std::string> code; ///< Comment/string-stripped lines.
    std::string codeText;          ///< code joined with '\n'.
    std::vector<std::set<std::string>> allows; ///< Per-line allow(rule).
    std::set<std::string> fileAllows;          ///< allow-file(rule).
    bool header = false;
    bool eventFile = false;    ///< Interacts with the event machinery.
    bool parallelFile = false; ///< Touches the sharded scheduler/fabric.
    std::string stem;          ///< Path without extension (for pairing).
};

PreparedFile prepareFile(const SourceFile &src);

/** One `novalint:` annotation (not an allow — those live on allows). */
struct Annotation
{
    enum class Kind
    {
        ShardLocal,     ///< state confined to one shard's event stream
        GuardedBy,      ///< state protected by a named mutex
        CanonicalOrder, ///< reduction runs in a canonical order
        Unknown,        ///< unrecognized annotation name
    };
    Kind kind = Kind::Unknown;
    std::string arg;  ///< guarded-by mutex name (empty otherwise).
    std::string name; ///< The raw annotation word, for messages.
    int line = 0;     ///< 0-based line of the annotation comment.
    bool malformed = false; ///< guarded-by without a parsable (mutex).
};

/** A mutable static-storage variable declaration. */
struct VarDecl
{
    enum class Storage
    {
        NamespaceScope, ///< namespace/file-scope variable
        StaticLocal,    ///< function-local `static`
        StaticMember,   ///< in-class `static`/`static inline` member
    };
    std::string name;
    Storage storage = Storage::NamespaceScope;
    int line = 0; ///< 0-based declaration line.
};

/** Span of one function definition's body. */
struct FunctionSpan
{
    std::string name;     ///< Unqualified function name.
    int headLine = 0;     ///< 0-based line of the opening brace.
    int bodyBeginLine = 0;
    int bodyEndLine = 0;
    std::size_t bodyBegin = 0; ///< codeText offset just past '{'.
    std::size_t bodyEnd = 0;   ///< codeText offset of the closing '}'.
};

/** An EventQueue& local bound from ParallelScheduler::shard(...). */
struct QueueAlias
{
    std::string name;
    int line = 0;          ///< 0-based declaration line.
    int functionIdx = -1;  ///< Index into FileModel::functions, or -1.
};

/** The pass-1 symbol model of one file. */
struct FileModel
{
    std::vector<Annotation> annotations;
    std::vector<VarDecl> mutableStatics;
    std::set<std::string> unorderedNames;   ///< unordered_{map,set} vars
    std::set<std::string> pointerKeyedNames;///< std::map<T*,..>/set<T*>
    std::set<std::string> mutexes;          ///< declared mutex names
    std::set<std::string> floatNames;       ///< double/float/stats::Scalar
    std::vector<FunctionSpan> functions;
    std::vector<QueueAlias> queueAliases;
};

FileModel buildModel(const PreparedFile &p);

/**
 * The annotation of `kind` attached to 0-based `line` — i.e. written on
 * that line or the line directly above — or nullptr.
 */
const Annotation *findAnnotation(const FileModel &m, int line,
                                 Annotation::Kind kind);

/** Index of the function span containing 0-based `line`, or -1. */
int enclosingFunction(const FileModel &m, int line);

} // namespace nova::lint

#endif // NOVA_NOVALINT_MODEL_HH
