/**
 * @file
 * nova-lint: static checks for simulator-invariant hygiene.
 *
 * The checker is lexical (comment- and string-aware, but not a full
 * parser): it enforces the repository rules that keep the discrete-event
 * simulation deterministic and memory-safe. See docs/STATIC_ANALYSIS.md
 * for the rule catalog and the rationale behind each rule.
 *
 * Suppressions:
 *  - `// novalint:allow(rule)` on the offending line or the line above
 *    silences one occurrence;
 *  - `// novalint:allow-file(rule)` anywhere silences the rule for the
 *    whole file. Multiple rules may be listed comma-separated.
 */

#ifndef NOVA_NOVALINT_LINT_HH
#define NOVA_NOVALINT_LINT_HH

#include <set>
#include <string>
#include <vector>

namespace nova::lint
{

/** One rule violation at a specific source location. */
struct Diagnostic
{
    std::string file;    ///< Path as supplied by the caller.
    int line = 0;        ///< 1-based line number.
    std::string rule;    ///< Rule identifier (kebab-case).
    std::string message; ///< Human-readable explanation.
};

/** A source file handed to the checker (path + full contents). */
struct SourceFile
{
    std::string path;
    std::string text;
};

/** All rule identifiers, in reporting order. */
const std::vector<std::string> &ruleNames();

/** One-line description of a rule (SARIF rule metadata). */
std::string ruleDescription(const std::string &rule);

/**
 * Lint a set of files together.
 *
 * Files are analysed as a set because some rules are cross-file (the
 * unregistered-stat rule pairs a header with its same-stem `.cc`).
 *
 * @param files   the sources to check.
 * @param enabled when non-empty, only these rules run.
 * @return diagnostics ordered by (file, line, rule).
 */
std::vector<Diagnostic>
lintFiles(const std::vector<SourceFile> &files,
          const std::set<std::string> &enabled = {});

/** Render a diagnostic as `path:line: error: [rule] message`. */
std::string formatDiagnostic(const Diagnostic &d);

} // namespace nova::lint

#endif // NOVA_NOVALINT_LINT_HH
