/**
 * @file
 * SARIF 2.1.0 rendering of nova-lint diagnostics.
 *
 * GitHub code scanning ingests SARIF; emitting it from the lint job
 * turns every finding into an inline PR annotation instead of a line in
 * a build log. The renderer covers exactly the subset code scanning
 * reads: tool metadata with per-rule descriptions, and one result per
 * diagnostic with a physical location.
 */

#ifndef NOVA_NOVALINT_SARIF_HH
#define NOVA_NOVALINT_SARIF_HH

#include <string>
#include <vector>

#include "lint.hh"

namespace nova::lint
{

/** Render diagnostics as a complete SARIF 2.1.0 document. */
std::string renderSarif(const std::vector<Diagnostic> &diags);

} // namespace nova::lint

#endif // NOVA_NOVALINT_SARIF_HH
