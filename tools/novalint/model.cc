#include "model.hh"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace nova::lint
{

namespace
{

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/**
 * Parse every `novalint:allow(...)`/`allow-file(...)` on a raw line.
 * Whitespace is tolerated everywhere a human would type it: after the
 * colon, before the parenthesis, around each comma-separated rule name
 * (tabs included), and trailing inside the list.
 */
void
collectAllows(const std::string &line, std::set<std::string> &line_rules,
              std::set<std::string> &file_rules)
{
    static const std::regex re(
        R"(novalint:\s*allow(-file)?\s*\(([A-Za-z0-9_,\-\s]+?)\s*\))");
    auto begin = std::sregex_iterator(line.begin(), line.end(), re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const bool whole_file = (*it)[1].matched;
        std::stringstream names((*it)[2].str());
        std::string name;
        while (std::getline(names, name, ',')) {
            name.erase(std::remove_if(name.begin(), name.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c) != 0;
                                      }),
                       name.end());
            if (name.empty())
                continue;
            (whole_file ? file_rules : line_rules).insert(name);
        }
    }
}

/**
 * Blank out comments and literal contents, preserving line structure and
 * the quote characters themselves (so `m["k"]` cannot look like a lambda
 * introducer). Handles line/block comments, string and char literals with
 * escapes, and digit separators (1'000).
 */
std::vector<std::string>
stripCode(const std::vector<std::string> &raw)
{
    std::vector<std::string> out;
    bool in_block = false;
    for (const std::string &line : raw) {
        std::string s;
        s.reserve(line.size());
        char quote = 0; // active literal delimiter, or 0
        char prev_code = 0;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char n = i + 1 < line.size() ? line[i + 1] : 0;
            if (in_block) {
                if (c == '*' && n == '/') {
                    in_block = false;
                    s += "  ";
                    ++i;
                } else {
                    s += ' ';
                }
                continue;
            }
            if (quote) {
                if (c == '\\') {
                    s += "  ";
                    ++i;
                } else if (c == quote) {
                    quote = 0;
                    s += c;
                } else {
                    s += ' ';
                }
                continue;
            }
            if (c == '/' && n == '/')
                break; // rest of line is a comment
            if (c == '/' && n == '*') {
                in_block = true;
                s += "  ";
                ++i;
                continue;
            }
            if (c == '"' ||
                (c == '\'' &&
                 !(std::isalnum(static_cast<unsigned char>(prev_code)) ||
                   prev_code == '_'))) {
                quote = c;
                s += c;
                prev_code = c;
                continue;
            }
            s += c;
            if (!std::isspace(static_cast<unsigned char>(c)))
                prev_code = c;
        }
        out.push_back(s);
    }
    return out;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------
// Scope scanner: classify every brace so lines know their scope and
// function bodies get spans.
// ---------------------------------------------------------------------

enum class ScopeKind
{
    File,
    Namespace,
    Class,
    Function,
    Block,
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Skip whitespace backwards; returns npos when text runs out. */
std::size_t
skipWsBack(const std::string &t, std::size_t i)
{
    while (i != std::string::npos &&
           std::isspace(static_cast<unsigned char>(t[i]))) {
        if (i == 0)
            return std::string::npos;
        --i;
    }
    return i;
}

/** Read the identifier (with :: and ~) ending at `i`; empty if none. */
std::string
identEndingAt(const std::string &t, std::size_t i, std::size_t *begin)
{
    std::size_t e = i;
    while (i != std::string::npos && (isIdentChar(t[i]) || t[i] == '~')) {
        if (i == 0) {
            i = std::string::npos;
            break;
        }
        --i;
    }
    // Consume `::` qualification chains so `noc::Network` reads whole.
    while (i != std::string::npos && i >= 1 && t[i] == ':' &&
           t[i - 1] == ':') {
        i = i >= 2 ? i - 2 : std::string::npos;
        while (i != std::string::npos && isIdentChar(t[i])) {
            if (i == 0) {
                i = std::string::npos;
                break;
            }
            --i;
        }
    }
    const std::size_t b = i == std::string::npos ? 0 : i + 1;
    if (begin)
        *begin = b;
    if (b > e)
        return "";
    return t.substr(b, e - b + 1);
}

/** Matching '(' for the ')' at `i`, or npos. */
std::size_t
matchOpenParen(const std::string &t, std::size_t i)
{
    int depth = 0;
    for (;; --i) {
        if (t[i] == ')')
            ++depth;
        else if (t[i] == '(' && --depth == 0)
            return i;
        if (i == 0)
            return std::string::npos;
    }
}

bool
isControlKeyword(const std::string &w)
{
    return w == "if" || w == "for" || w == "while" || w == "switch" ||
           w == "catch" || w == "return" || w == "sizeof" ||
           w == "alignof" || w == "decltype" || w == "do" || w == "else";
}

/**
 * Classify the brace at `open`, given the innermost enclosing scope.
 * `name` receives the function name for Function results.
 */
ScopeKind
classifyBrace(const std::string &t, std::size_t open, ScopeKind enclosing,
              std::string *name)
{
    if (open == 0)
        return ScopeKind::Block;
    std::size_t i = skipWsBack(t, open - 1);
    if (i == std::string::npos)
        return ScopeKind::Block;

    // Strip trailing function qualifiers: `) const noexcept override {`.
    for (;;) {
        if (!isIdentChar(t[i]))
            break;
        std::size_t b = 0;
        const std::string w = identEndingAt(t, i, &b);
        if (w == "const" || w == "noexcept" || w == "override" ||
            w == "final" || w == "mutable" || w == "try") {
            if (b == 0)
                return ScopeKind::Block;
            i = skipWsBack(t, b - 1);
            if (i == std::string::npos)
                return ScopeKind::Block;
            continue;
        }
        break;
    }

    // `namespace X {` / `namespace {` / `class Y : public Z {` heads:
    // walk back to the statement boundary and regex the head.
    if (isIdentChar(t[i]) || t[i] == ':' || t[i] == '>') {
        std::size_t b = i;
        int angle = 0;
        int paren = 0;
        while (b != std::string::npos) {
            const char c = t[b];
            if (c == '>')
                ++angle;
            else if (c == '<' && angle > 0)
                --angle;
            else if (c == ')')
                ++paren;
            else if (c == '(' && paren > 0)
                --paren;
            else if (paren == 0 && angle == 0 &&
                     (c == ';' || c == '{' || c == '}'))
                break;
            if (b == 0) {
                b = std::string::npos;
                break;
            }
            --b;
        }
        const std::string head =
            t.substr(b == std::string::npos ? 0 : b + 1,
                     i - (b == std::string::npos ? 0 : b + 1) + 1);
        static const std::regex ns(
            R"(\bnamespace(\s+[A-Za-z_][\w:]*)?\s*$)");
        if (std::regex_search(head, ns))
            return ScopeKind::Namespace;
        static const std::regex cls(R"(\b(class|struct|union|enum)\b)");
        if (std::regex_search(head, cls) &&
            head.find('(') == std::string::npos &&
            head.find('=') == std::string::npos)
            return ScopeKind::Class;
        return ScopeKind::Block; // braced init, array init, ...
    }

    // `...) {`: a function definition, a control statement, a lambda,
    // or a constructor init list. Walk `ident(...)` groups leftwards.
    while (t[i] == ')') {
        const std::size_t op = matchOpenParen(t, i);
        if (op == std::string::npos || op == 0)
            return ScopeKind::Block;
        std::size_t j = skipWsBack(t, op - 1);
        if (j == std::string::npos)
            return ScopeKind::Block;
        if (t[j] == ']')
            return ScopeKind::Block; // lambda introducer
        if (t[j] == '>') {
            // Skip a template argument list: `run<T>(...)`.
            int angle = 1;
            while (j > 0 && angle > 0) {
                --j;
                if (t[j] == '>')
                    ++angle;
                else if (t[j] == '<')
                    --angle;
            }
            if (j == 0)
                return ScopeKind::Block;
            j = skipWsBack(t, j - 1);
            if (j == std::string::npos)
                return ScopeKind::Block;
        }
        if (!isIdentChar(t[j]) && t[j] != '~')
            return ScopeKind::Block;
        std::size_t b = 0;
        const std::string id = identEndingAt(t, j, &b);
        if (id.empty())
            return ScopeKind::Block;
        if (isControlKeyword(id))
            return ScopeKind::Block;
        // Constructor init-list member: `: member(...)` or `, member(...)`
        // — keep walking left to the parameter list.
        std::size_t k =
            b == 0 ? std::string::npos : skipWsBack(t, b - 1);
        if (k != std::string::npos &&
            (t[k] == ',' ||
             (t[k] == ':' && (k == 0 || t[k - 1] != ':')))) {
            if (k == 0)
                return ScopeKind::Block;
            i = skipWsBack(t, k - 1);
            if (i == std::string::npos)
                return ScopeKind::Block;
            if (t[i] == '}' || t[i] == ']')
                return ScopeKind::Block; // `Foo f{...}, g{...}` etc.
            continue;
        }
        if (enclosing == ScopeKind::Function ||
            enclosing == ScopeKind::Block)
            return ScopeKind::Block; // local lambda/compound statement
        // Unqualified final component for reporting.
        const std::size_t sep = id.rfind("::");
        if (name)
            *name = sep == std::string::npos ? id : id.substr(sep + 2);
        return ScopeKind::Function;
    }

    if (t[i] == '=' || t[i] == ',' || t[i] == '(' || t[i] == '{')
        return ScopeKind::Block; // initializer lists
    return ScopeKind::Block;
}

struct ScopeInfo
{
    std::vector<FunctionSpan> functions;
    /** Innermost scope kind at the start of each line. */
    std::vector<ScopeKind> lineScope;
    /** Whether each line is inside some function body. */
    std::vector<bool> lineInFunction;
    /** Whether each line is inside a class body (outside functions). */
    std::vector<bool> lineInClass;
};

ScopeInfo
scanScopes(const PreparedFile &p)
{
    const std::string &t = p.codeText;
    ScopeInfo info;
    info.lineScope.assign(p.code.size(), ScopeKind::File);
    info.lineInFunction.assign(p.code.size(), false);
    info.lineInClass.assign(p.code.size(), false);

    struct Open
    {
        ScopeKind kind;
        int fnIdx = -1; ///< index into info.functions for Function
    };
    std::vector<Open> stack;
    int line = 0;
    int fnDepth = 0;
    int classDepth = 0;

    const auto innermost = [&stack]() {
        return stack.empty() ? ScopeKind::File : stack.back().kind;
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
        const char c = t[i];
        if (c == '\n') {
            ++line;
            if (static_cast<std::size_t>(line) < info.lineScope.size()) {
                info.lineScope[line] = innermost();
                info.lineInFunction[line] = fnDepth > 0;
                info.lineInClass[line] = classDepth > 0 && fnDepth == 0;
            }
            continue;
        }
        if (c == '{') {
            std::string name;
            ScopeKind kind = classifyBrace(t, i, innermost(), &name);
            if (fnDepth > 0 && kind == ScopeKind::Function)
                kind = ScopeKind::Block; // defensive: no nested defs
            Open o{kind, -1};
            if (kind == ScopeKind::Function) {
                FunctionSpan fn;
                fn.name = name;
                fn.headLine = line;
                fn.bodyBegin = i + 1;
                fn.bodyBeginLine = line;
                o.fnIdx = static_cast<int>(info.functions.size());
                info.functions.push_back(fn);
                ++fnDepth;
            } else if (kind == ScopeKind::Class) {
                ++classDepth;
            }
            stack.push_back(o);
        } else if (c == '}') {
            if (!stack.empty()) {
                const Open o = stack.back();
                stack.pop_back();
                if (o.kind == ScopeKind::Function) {
                    --fnDepth;
                    info.functions[o.fnIdx].bodyEnd = i;
                    info.functions[o.fnIdx].bodyEndLine = line;
                } else if (o.kind == ScopeKind::Class) {
                    --classDepth;
                }
            }
        }
    }
    // Unterminated spans (truncated file): close at EOF.
    for (FunctionSpan &fn : info.functions) {
        if (fn.bodyEnd == 0) {
            fn.bodyEnd = t.size();
            fn.bodyEndLine = line;
        }
    }
    return info;
}

// ---------------------------------------------------------------------
// Declaration harvesting.
// ---------------------------------------------------------------------

void
collectUnorderedNames(const std::string &text, std::set<std::string> &names)
{
    static const std::regex decl(R"(\bunordered_(?:map|set)\s*<)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
         it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position()) +
                          it->length();
        int depth = 1;
        while (pos < text.size() && depth > 0) {
            if (text[pos] == '<')
                ++depth;
            else if (text[pos] == '>')
                --depth;
            ++pos;
        }
        static const std::regex name_re(R"(^\s*&?\s*([A-Za-z_]\w*))");
        std::smatch m;
        const std::string rest = text.substr(pos, 128);
        if (std::regex_search(rest, m, name_re))
            names.insert(m[1].str());
    }
}

/** `std::map<T*, ...>` / `std::set<T*>`: ordered by host address. */
void
collectPointerKeyedNames(const std::string &text,
                         std::set<std::string> &names)
{
    static const std::regex decl(
        R"(\b(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^<>]*>)?\s*\*)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
         it != std::sregex_iterator(); ++it) {
        const std::size_t at = static_cast<std::size_t>(it->position());
        // Reject unordered_map/unordered_set: hashed, not address-ordered
        // (the unordered rules own those).
        if (at >= 10 && text.compare(at - 10, 10, "unordered_") == 0)
            continue;
        std::size_t pos = text.find('<', at);
        int depth = 1;
        ++pos;
        while (pos < text.size() && depth > 0) {
            if (text[pos] == '<')
                ++depth;
            else if (text[pos] == '>')
                --depth;
            ++pos;
        }
        static const std::regex name_re(R"(^\s*&?\s*([A-Za-z_]\w*))");
        std::smatch m;
        const std::string rest = text.substr(pos, 128);
        if (std::regex_search(rest, m, name_re))
            names.insert(m[1].str());
    }
}

void
collectMutexes(const std::string &text, std::set<std::string> &names)
{
    static const std::regex decl(
        R"(\b(?:std\s*::\s*)?(?:recursive_|shared_|timed_|recursive_timed_)?mutex\s+([A-Za-z_]\w*)\s*;)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
         it != std::sregex_iterator(); ++it)
        names.insert((*it)[1].str());
}

void
collectFloatNames(const std::string &text, std::set<std::string> &names)
{
    static const std::regex decl(
        R"(\b(?:double|float|stats::Scalar)\s+([A-Za-z_]\w*)\s*[;={,)\[])");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
         it != std::sregex_iterator(); ++it)
        names.insert((*it)[1].str());
}

/** Keywords that rule a line out as a mutable-variable declaration. */
bool
hasDisqualifier(const std::string &line)
{
    static const std::regex dq(
        R"(\b(const|constexpr|constinit|using|typedef|extern|friend|template|return|class|struct|enum|union|namespace|static_assert|operator|public|private|protected|if|for|while|switch|case|goto|sizeof|new|delete|throw)\b)");
    return std::regex_search(line, dq);
}

void
collectMutableStatics(const PreparedFile &p, const ScopeInfo &scopes,
                      std::vector<VarDecl> &out)
{
    // Namespace-scope: `Type name;` / `Type name = ...;` with optional
    // static/inline/thread_local, no const and no parameter list.
    static const std::regex nsDecl(
        R"(^\s*(?:(?:static|inline|thread_local)\s+)*[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?(?:\s*::\s*[A-Za-z_]\w*)*(?:\s*[&*])*\s+([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;)");
    // `static Type name ...;` locals and class members (inline/
    // thread_local in any order after static).
    static const std::regex staticDecl(
        R"(^\s*static\s+(?:(?:inline|thread_local)\s+)*[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?(?:\s*::\s*[A-Za-z_]\w*)*(?:\s*[&*])*\s+([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;)");

    for (std::size_t i = 0; i < p.code.size(); ++i) {
        const std::string &line = p.code[i];
        if (line.find(';') == std::string::npos)
            continue;
        std::smatch m;
        if (scopes.lineInFunction[i]) {
            if (!hasDisqualifier(line) &&
                std::regex_search(line, m, staticDecl)) {
                out.push_back(VarDecl{m[1].str(),
                                      VarDecl::Storage::StaticLocal,
                                      static_cast<int>(i)});
            }
        } else if (scopes.lineInClass[i]) {
            if (!hasDisqualifier(line) &&
                std::regex_search(line, m, staticDecl)) {
                out.push_back(VarDecl{m[1].str(),
                                      VarDecl::Storage::StaticMember,
                                      static_cast<int>(i)});
            }
        } else if (scopes.lineScope[i] == ScopeKind::File ||
                   scopes.lineScope[i] == ScopeKind::Namespace) {
            if (!hasDisqualifier(line) &&
                std::regex_search(line, m, nsDecl)) {
                out.push_back(VarDecl{m[1].str(),
                                      VarDecl::Storage::NamespaceScope,
                                      static_cast<int>(i)});
            }
        }
    }
}

void
collectQueueAliases(const PreparedFile &p, const FileModel &m,
                    std::vector<QueueAlias> &out)
{
    static const std::regex alias(
        R"(\bEventQueue\s*&\s*([A-Za-z_]\w*)\s*=\s*[^;]*\.\s*shard\s*\()");
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        std::smatch match;
        if (std::regex_search(p.code[i], match, alias)) {
            QueueAlias a;
            a.name = match[1].str();
            a.line = static_cast<int>(i);
            a.functionIdx = enclosingFunction(m, a.line);
            out.push_back(a);
        }
    }
}

void
collectAnnotations(const PreparedFile &p, std::vector<Annotation> &out)
{
    // Only comment-context annotations count: `// novalint: <word>`.
    // (String literals mentioning the grammar — e.g. in this very file's
    // regexes — must not register.)
    static const std::regex ann(
        R"re(//\s*novalint:\s*([A-Za-z][A-Za-z-]*)(\s*\(\s*([A-Za-z_][\w.:]*)\s*\))?)re");
    for (std::size_t i = 0; i < p.raw.size(); ++i) {
        auto begin = std::sregex_iterator(p.raw[i].begin(),
                                          p.raw[i].end(), ann);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string word = (*it)[1].str();
            if (word == "allow" || word == "allow-file")
                continue; // suppressions, handled separately
            Annotation a;
            a.name = word;
            a.line = static_cast<int>(i);
            if (word == "shard-local") {
                a.kind = Annotation::Kind::ShardLocal;
            } else if (word == "guarded-by") {
                a.kind = Annotation::Kind::GuardedBy;
                if ((*it)[3].matched)
                    a.arg = (*it)[3].str();
                else
                    a.malformed = true;
            } else if (word == "canonical-order") {
                a.kind = Annotation::Kind::CanonicalOrder;
            } else {
                a.kind = Annotation::Kind::Unknown;
            }
            out.push_back(a);
        }
    }
}

} // namespace

PreparedFile
prepareFile(const SourceFile &src)
{
    PreparedFile p;
    p.src = &src;
    p.raw = splitLines(src.text);
    p.code = stripCode(p.raw);
    p.allows.resize(p.raw.size());
    for (std::size_t i = 0; i < p.raw.size(); ++i)
        collectAllows(p.raw[i], p.allows[i], p.fileAllows);
    for (const std::string &line : p.code) {
        p.codeText += line;
        p.codeText += '\n';
    }
    p.header = endsWith(src.path, ".hh") || endsWith(src.path, ".hpp") ||
               endsWith(src.path, ".h");
    const std::size_t dot = src.path.rfind('.');
    p.stem = dot == std::string::npos ? src.path : src.path.substr(0, dot);

    // A file participates in event scheduling when it names the event
    // machinery or includes the kernel headers; only such files can turn
    // lexical nondeterminism into schedule nondeterminism.
    static const std::regex ev(R"(\b(EventQueue|SelfEvent)\b)");
    p.eventFile = std::regex_search(p.codeText, ev);
    if (!p.eventFile) {
        static const std::regex inc(
            "#\\s*include\\s*\"sim/(event_queue|sim_object|simulator)"
            "\\.hh\"");
        for (const std::string &line : p.raw) {
            if (std::regex_search(line, inc)) {
                p.eventFile = true;
                break;
            }
        }
    }

    // A file is shard-aware when it names the parallel scheduler or its
    // mailbox API, or includes the sharded headers: its code can run on
    // worker threads and can address other shards' queues.
    static const std::regex par(
        R"(\b(ParallelScheduler|postCross)\b)");
    p.parallelFile = std::regex_search(p.codeText, par);
    if (!p.parallelFile) {
        static const std::regex pinc(
            "#\\s*include\\s*\"(sim/parallel|noc/sharded)\\.hh\"");
        for (const std::string &line : p.raw) {
            if (std::regex_search(line, pinc)) {
                p.parallelFile = true;
                break;
            }
        }
    }
    return p;
}

FileModel
buildModel(const PreparedFile &p)
{
    FileModel m;
    const ScopeInfo scopes = scanScopes(p);
    m.functions = scopes.functions;
    collectUnorderedNames(p.codeText, m.unorderedNames);
    collectPointerKeyedNames(p.codeText, m.pointerKeyedNames);
    collectMutexes(p.codeText, m.mutexes);
    collectFloatNames(p.codeText, m.floatNames);
    collectMutableStatics(p, scopes, m.mutableStatics);
    collectAnnotations(p, m.annotations);
    collectQueueAliases(p, m, m.queueAliases);
    return m;
}

const Annotation *
findAnnotation(const FileModel &m, int line, Annotation::Kind kind)
{
    for (const Annotation &a : m.annotations) {
        if (a.kind != kind)
            continue;
        if (a.line == line || a.line == line - 1)
            return &a;
    }
    return nullptr;
}

int
enclosingFunction(const FileModel &m, int line)
{
    int best = -1;
    for (std::size_t i = 0; i < m.functions.size(); ++i) {
        const FunctionSpan &fn = m.functions[i];
        if (fn.bodyBeginLine <= line && line <= fn.bodyEndLine) {
            // Innermost wins (spans cannot partially overlap).
            if (best < 0 ||
                fn.bodyBeginLine >= m.functions[best].bodyBeginLine)
                best = static_cast<int>(i);
        }
    }
    return best;
}

} // namespace nova::lint
