#include "sarif.hh"

#include <cstdio>
#include <set>
#include <sstream>

namespace nova::lint
{

namespace
{

/** JSON string escaping (control chars, quotes, backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\r':
            os << "\\r";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

} // namespace

std::string
renderSarif(const std::vector<Diagnostic> &diags)
{
    // Rules referenced by at least one result come first, in catalog
    // order, so every result's ruleIndex is stable and compact; code
    // scanning only displays referenced rules anyway.
    std::set<std::string> used;
    for (const Diagnostic &d : diags)
        used.insert(d.rule);
    std::vector<std::string> rules;
    std::ostringstream rule_json;
    for (const std::string &r : ruleNames()) {
        if (used.count(r) == 0)
            continue;
        if (!rules.empty())
            rule_json << ",";
        rule_json << "\n        {\"id\": \"" << jsonEscape(r)
                  << "\", \"shortDescription\": {\"text\": \""
                  << jsonEscape(ruleDescription(r))
                  << "\"}, \"defaultConfiguration\": {\"level\": "
                     "\"error\"}}";
        rules.push_back(r);
    }

    std::ostringstream results;
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        std::size_t rule_idx = 0;
        for (; rule_idx < rules.size(); ++rule_idx)
            if (rules[rule_idx] == d.rule)
                break;
        if (i)
            results << ",";
        results << "\n      {\"ruleId\": \"" << jsonEscape(d.rule)
                << "\", \"ruleIndex\": " << rule_idx
                << ", \"level\": \"error\", \"message\": {\"text\": \""
                << jsonEscape(d.message)
                << "\"}, \"locations\": [{\"physicalLocation\": "
                   "{\"artifactLocation\": {\"uri\": \""
                << jsonEscape(d.file)
                << "\"}, \"region\": {\"startLine\": " << d.line
                << "}}}]}";
    }

    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
          "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\n"
       << "      \"name\": \"nova-lint\",\n"
       << "      \"informationUri\": "
          "\"docs/STATIC_ANALYSIS.md\",\n"
       << "      \"rules\": [" << rule_json.str()
       << (rules.empty() ? "" : "\n      ") << "]\n"
       << "    }},\n"
       << "    \"results\": [" << results.str()
       << (diags.empty() ? "" : "\n    ") << "]\n"
       << "  }]\n"
       << "}\n";
    return os.str();
}

} // namespace nova::lint
