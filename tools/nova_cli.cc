/**
 * @file
 * nova_cli — run any workload on any engine from the command line.
 *
 *   nova_cli --engine=nova --workload=bfs --graph=twitter --scale=2000
 *   nova_cli --engine=polygraph --workload=pr --graph=rmat:16384:262144
 *   nova_cli --engine=nova --workload=sssp --graph=file:my.el --gpns=4
 *
 * Options (defaults in brackets):
 *   --engine=nova|polygraph|ligra            [nova]
 *   --workload=bfs|sssp|cc|pr|bc             [bfs]
 *   --graph=roadusa|twitter|friendster|host|urand
 *           |rmat:<V>:<E>|uniform:<V>:<E>|grid:<W>:<H>|file:<path>
 *                                            [twitter]
 *   --scale=<S>      preset scale denominator          [1000]
 *   --gpns=<N>       NOVA GPN count                    [1]
 *   --cache=<bytes>  per-PE cache                      [scaled 64 KiB]
 *   --sbdim=<N>      tracker superblock dimension      [128]
 *   --buffer=<N>     active-buffer entries             [80]
 *   --fabric=hier|ideal|p2p                            [hier]
 *   --mapping=random|loadbalanced|locality|interleave  [random]
 *   --src=<v>        traversal source  [highest out-degree]
 *   --seed=<n>       mapping/graph seed                [1]
 *   --no-validate    skip the reference check
 *   --stats          dump all engine statistics
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "baselines/ligra.hh"
#include "baselines/polygraph.hh"
#include "core/system.hh"
#include "graph/generators.hh"
#include "graph/graph_stats.hh"
#include "graph/io.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "workloads/bc.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;

namespace
{

struct CliOptions
{
    std::string engine = "nova";
    std::string workload = "bfs";
    std::string graphSpec = "twitter";
    std::string mapping = "random";
    std::string fabric = "hier";
    double scale = 1000;
    std::uint32_t gpns = 1;
    std::uint32_t cacheBytes = 0;
    std::uint32_t sbDim = 128;
    std::uint32_t bufferEntries = 80;
    std::int64_t src = -1;
    std::uint64_t seed = 1;
    bool validate = true;
    bool dumpStats = false;
};

bool
takeValue(const char *arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0) {
        out = arg + n;
        return true;
    }
    return false;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    std::string v;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (takeValue(a, "--engine=", o.engine) ||
            takeValue(a, "--workload=", o.workload) ||
            takeValue(a, "--graph=", o.graphSpec) ||
            takeValue(a, "--mapping=", o.mapping) ||
            takeValue(a, "--fabric=", o.fabric))
            continue;
        if (takeValue(a, "--scale=", v))
            o.scale = std::atof(v.c_str());
        else if (takeValue(a, "--gpns=", v))
            o.gpns = static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--cache=", v))
            o.cacheBytes =
                static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--sbdim=", v))
            o.sbDim = static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--buffer=", v))
            o.bufferEntries =
                static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--src=", v))
            o.src = std::atoll(v.c_str());
        else if (takeValue(a, "--seed=", v))
            o.seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
        else if (std::strcmp(a, "--no-validate") == 0)
            o.validate = false;
        else if (std::strcmp(a, "--stats") == 0)
            o.dumpStats = true;
        else
            sim::fatal("unknown option '", a,
                       "' (see the header of tools/nova_cli.cc)");
    }
    return o;
}

graph::Csr
makeGraph(const CliOptions &o)
{
    const std::string &s = o.graphSpec;
    if (s == "roadusa")
        return graph::makeRoadUsa(o.scale, o.seed).graph;
    if (s == "twitter")
        return graph::makeTwitter(o.scale, o.seed).graph;
    if (s == "friendster")
        return graph::makeFriendster(o.scale, o.seed).graph;
    if (s == "host")
        return graph::makeHost(o.scale, o.seed).graph;
    if (s == "urand")
        return graph::makeUrand(o.scale, o.seed).graph;

    const auto colon1 = s.find(':');
    const std::string kind = s.substr(0, colon1);
    if (kind == "file")
        return graph::loadEdgeListFile(s.substr(colon1 + 1));
    const auto colon2 = s.find(':', colon1 + 1);
    if (colon1 == std::string::npos || colon2 == std::string::npos)
        sim::fatal("bad --graph spec '", s, "'");
    const auto p1 = std::strtoull(s.c_str() + colon1 + 1, nullptr, 10);
    const auto p2 = std::strtoull(s.c_str() + colon2 + 1, nullptr, 10);
    if (kind == "rmat") {
        graph::RmatParams p;
        p.numVertices = static_cast<graph::VertexId>(p1);
        p.numEdges = p2;
        p.maxWeight = 255;
        p.seed = o.seed;
        return graph::generateRmat(p);
    }
    if (kind == "uniform") {
        graph::UniformParams p;
        p.numVertices = static_cast<graph::VertexId>(p1);
        p.numEdges = p2;
        p.maxWeight = 255;
        p.seed = o.seed;
        return graph::generateUniform(p);
    }
    if (kind == "grid") {
        graph::RoadGridParams p;
        p.width = static_cast<graph::VertexId>(p1);
        p.height = static_cast<graph::VertexId>(p2);
        p.maxWeight = 255;
        p.seed = o.seed;
        return graph::generateRoadGrid(p);
    }
    sim::fatal("bad --graph spec '", s, "'");
}

std::unique_ptr<workloads::GraphEngine>
makeEngine(const CliOptions &o)
{
    if (o.engine == "nova") {
        core::NovaConfig cfg = core::NovaConfig{}.scaled(o.scale);
        cfg.numGpns = o.gpns;
        if (o.cacheBytes)
            cfg.cacheBytesPerPe = o.cacheBytes;
        cfg.superblockDim = o.sbDim;
        cfg.activeBufferEntries = o.bufferEntries;
        if (o.fabric == "ideal")
            cfg.fabric = noc::FabricKind::Ideal;
        else if (o.fabric == "p2p")
            cfg.fabric = noc::FabricKind::PointToPoint;
        return std::make_unique<core::NovaSystem>(cfg);
    }
    if (o.engine == "polygraph")
        return std::make_unique<baselines::PolyGraphModel>(
            baselines::PolyGraphConfig{}.scaled(o.scale));
    if (o.engine == "ligra")
        return std::make_unique<baselines::LigraEngine>();
    sim::fatal("unknown engine '", o.engine, "'");
}

graph::VertexMapping
makeMapping(const CliOptions &o, const graph::Csr &g,
            std::uint32_t parts)
{
    if (o.mapping == "random")
        return graph::randomMapping(g.numVertices(), parts, o.seed);
    if (o.mapping == "loadbalanced")
        return graph::loadBalancedMapping(g, parts);
    if (o.mapping == "locality")
        return graph::localityMapping(g, parts);
    if (o.mapping == "interleave")
        return graph::VertexMapping::interleave(g.numVertices(), parts);
    sim::fatal("unknown mapping '", o.mapping, "'");
}

} // namespace

int
main(int argc, char **argv)
try {
    const CliOptions o = parseArgs(argc, argv);

    graph::Csr g = makeGraph(o);
    const bool needs_symmetric = o.workload == "cc" || o.workload == "bc";
    if (needs_symmetric)
        g = graph::symmetrize(g);
    const graph::VertexId src =
        o.src >= 0 ? static_cast<graph::VertexId>(o.src)
                   : graph::highestDegreeVertex(g);

    auto engine = makeEngine(o);
    const std::uint32_t parts =
        o.engine == "nova" ? o.gpns * 8 : 1;
    const auto map = makeMapping(o, g, parts);

    std::printf("engine=%s workload=%s graph=%s (V=%u, E=%llu) src=%u\n",
                o.engine.c_str(), o.workload.c_str(),
                o.graphSpec.c_str(), g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()), src);

    workloads::RunResult r;
    bool valid = true;
    namespace ref = workloads::reference;
    if (o.workload == "bfs") {
        workloads::BfsProgram prog(src);
        r = engine->run(prog, g, map);
        if (o.validate)
            valid = r.props == ref::bfsDepths(g, src);
    } else if (o.workload == "sssp") {
        workloads::SsspProgram prog(src);
        r = engine->run(prog, g, map);
        if (o.validate)
            valid = r.props == ref::ssspDistances(g, src);
    } else if (o.workload == "cc") {
        workloads::CcProgram prog;
        r = engine->run(prog, g, map);
        if (o.validate)
            valid = r.props == ref::ccLabels(g);
    } else if (o.workload == "pr") {
        workloads::PageRankProgram prog(0.85, 1e-9, 10);
        r = engine->run(prog, g, map);
        if (o.validate) {
            const auto want = ref::pagerankDelta(g, 0.85, 1e-9, 10);
            for (graph::VertexId v = 0; v < g.numVertices(); ++v)
                valid = valid && std::abs(prog.rank()[v] - want[v]) <=
                                     1e-9 + 1e-5 * want[v];
        }
    } else if (o.workload == "bc") {
        const auto bc = workloads::runBc(*engine, g, map, src);
        r = bc.forward;
        r.ticks = bc.totalTicks();
        r.messagesGenerated = bc.totalEdgesTraversed();
        if (o.validate) {
            const auto want = ref::bcDependencies(g, src);
            for (graph::VertexId v = 0; v < g.numVertices(); ++v)
                valid = valid &&
                        std::abs(bc.centrality[v] - want[v]) <=
                            1e-4 + 1e-2 * std::abs(want[v]);
        }
    } else {
        sim::fatal("unknown workload '", o.workload, "'");
    }

    std::printf("time: %.6f ms %s\n", r.seconds() * 1e3,
                o.engine == "ligra" ? "(wall)" : "(simulated)");
    std::printf("throughput: %.3f GTEPS over %llu traversed edges\n",
                r.gteps(),
                static_cast<unsigned long long>(r.messagesGenerated));
    std::printf("coalesced: %.2f%%; BSP supersteps: %llu\n",
                100 * r.coalescingRate(),
                static_cast<unsigned long long>(r.bspIterations));
    if (o.validate)
        std::printf("validation: %s\n", valid ? "OK" : "MISMATCH");
    if (o.dumpStats)
        for (const auto &[k, val] : r.extra)
            std::printf("  %-42s %.6g\n", k.c_str(), val);
    return valid ? 0 : 1;
} catch (const std::exception &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
}
