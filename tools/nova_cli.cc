/**
 * @file
 * nova_cli — run any workload on any engine from the command line.
 *
 *   nova_cli --engine=nova --workload=bfs --graph=twitter --scale=2000
 *   nova_cli --engine=polygraph --workload=pr --graph=rmat:16384:262144
 *   nova_cli --engine=nova --workload=sssp --graph=file:my.el --gpns=4
 *
 * Options (defaults in brackets):
 *   --engine=nova|polygraph|ligra            [nova]
 *   --workload=bfs|sssp|cc|pr|bc             [bfs]
 *   --graph=roadusa|twitter|friendster|host|urand
 *           |rmat:<V>:<E>|uniform:<V>:<E>|grid:<W>:<H>|file:<path>
 *           |bin:<path>  (binary CSR container, keeps isolated
 *                         vertices an edge list cannot express)
 *                                            [twitter]
 *   --scale=<S>      preset scale denominator          [1000]
 *   --gpns=<N>       NOVA GPN count                    [1]
 *   --cache=<bytes>  per-PE cache                      [scaled 64 KiB]
 *   --sbdim=<N>      tracker superblock dimension      [128]
 *   --buffer=<N>     active-buffer entries             [80]
 *   --fabric=hier|ideal|p2p                            [hier]
 *   --mapping=random|loadbalanced|locality|interleave  [random]
 *   --src=<v>        traversal source  [highest out-degree]
 *   --seed=<n>       mapping/graph seed                [1]
 *   --no-validate    skip the reference check
 *   --stats          dump all engine statistics
 *   --profile        arm the host-time profiler; print a sorted table
 *                    and profile.* extras after the run
 *   --queue-impl=calendar|legacy  event-queue backend (overrides the
 *                    NOVA_EQ_IMPL environment variable)   [calendar]
 *   --threads=<N>    shard the event queue per GPN and run the shards
 *                    on N host threads (nova engine only; 0 = the
 *                    serial single-queue scheduler)        [0]
 *   --deterministic-merge  with --threads, additionally merge the
 *                    per-shard event traces into one canonical order
 *                    and print its fingerprint (docs/PARALLEL.md)
 *
 * Resilience (nova engine only; see docs/RESILIENCE.md):
 *   --faults=<schedule>   fault schedule (sim/fault.hh grammar)
 *   --fault-seed=<n>      fault-probability RNG seed        [0]
 *   --max-ticks=<n>       abort if simulated time passes n  [off]
 *   --max-events=<n>      abort after n events              [off]
 *   --watchdog=<n>        progress check every n events     [off]
 *   --checkpoint-every=<n> checkpoint every n BSP iterations
 *   --checkpoint-file=<p> checkpoint path              [nova.ckpt]
 *   --resume=<p>          restore state from a checkpoint file
 *   --stop-after=<n>      checkpoint after iteration n and stop
 *   --crash-bundle=<p>    crash-bundle path       [nova_crash.txt]
 *   --keep-generations=<k> checkpoint generations kept (newest at the
 *                    checkpoint file, older at <file>.1 ...; resume
 *                    falls back to the newest valid one)       [1]
 *
 * Supervision (docs/RESILIENCE.md, "Supervision"): with --supervise,
 * nova_cli runs the simulation as a child process and restarts it
 * from the newest valid checkpoint generation when it crashes:
 *   --supervise           enable the crash-recovery supervisor
 *   --max-restarts=<n>    restarts allowed after the first run    [5]
 *   --backoff-ms=<n>      first restart delay, doubles per crash [100]
 *   --crash-loop=<n>      consecutive no-progress crashes that give
 *                         up as a crash loop                      [3]
 *   --recovery-report=<p> write a JSON recovery report (schema
 *                         nova-recovery-1)
 *
 * Exit codes: 0 success, 1 user error (FatalError, bad flags,
 * validation mismatch), 2 simulator bug (PanicError; a crash bundle
 * with a replay line is left behind), 3 supervision gave up (retries
 * exhausted or crash loop; only with --supervise).
 *
 * Multi-tenant serving subcommand (see docs/SERVING.md):
 *
 *   nova_cli serve --graph=rmat:256:1024 --arrivals=poisson:4000000 \
 *       --tenants=4 --duration=200000000 --report=serving.json
 *
 *   --graph=<spec>        resident graph (same grammar)  [rmat:256:1024]
 *   --arrivals=poisson:<gap>|trace:<path>        [poisson:4000000]
 *   --tenants=<N>         tenants sharing the deployment        [4]
 *   --duration=<T>        arrival horizon in ticks    [200000000]
 *   --groups=<N>          parallel PE groups                    [2]
 *   --gpns-per-group=<N>  GPNs per group                        [1]
 *   --quota=<N>           max in-flight queries per tenant      [4]
 *   --queue-cap=<N>       pending-queue cap per tenant (shed)  [16]
 *   --batch-max=<N>       max same-kind queries per dispatch    [4]
 *   --batch-window=<T>    batching wait in ticks          [2000000]
 *   --setup=<T>           per-dispatch setup ticks            [500]
 *   --contention=<P>      % service inflation per busy group   [10]
 *   --scale=<S> --seed=<N> --threads=<N> --queue-impl=...
 *   --ppr-iters=<N>       personalized-PageRank budget          [8]
 *   --report=<path>       write the nova-serving-1 JSON report
 *                         (default: print it on stdout)
 *   --stats               dump the serving statistics tree
 *   --ckpt-every=<N>      checkpoint every N completions      [off]
 *   --ckpt-file=<p>       campaign checkpoint path  [nova_serve.ckpt]
 *   --resume=<p>          resume a stopped campaign
 *   --stop-after=<N>      checkpoint after N completions and stop
 *   --keep-generations=<k> checkpoint generations kept           [1]
 *
 * Differential fuzzing subcommand (see docs/VERIFICATION.md):
 *
 *   nova_cli verify --fuzz=200 --seed=1
 *   nova_cli verify --fuzz=25 --seed=7 --algos=sssp --engines=nova
 *   nova_cli verify --replay=NV1.s1.i12.sssp.nova.v256.e2048
 *
 *   --fuzz=<N>       differential iterations           [100]
 *   --seed=<S>       fuzz stream seed                  [1]
 *   --algos=a,b      subset of bfs,sssp,cc,pr          [all]
 *   --engines=a,b    subset of nova,polygraph,ligra    [all]
 *   --max-v=<N>      fuzzer vertex bound               [256]
 *   --max-e=<N>      fuzzer edge bound                 [2048]
 *   --inject-fault=<AFTER>[:<MASK-hex>]  corrupt the AFTER-th reduce
 *   --inject-recovered=<AFTER>[:<MASK-hex>]  recovered variant (must
 *                    NOT diverge; counted as a recovery)
 *   --faults=<schedule>  hardware fault schedule inside NOVA runs
 *   --replay=<tok>   re-run one recorded failing case
 *   --cross-queue    run every NOVA case on both event-queue backends
 *                    and require bit-identical fingerprints
 *   --cross-sched[=N]  run every NOVA case on the sharded scheduler
 *                    with {heap, calendar} x {1, N} host threads under
 *                    --deterministic-merge and require all four run
 *                    records bit-identical and reference-correct [N=4]
 *   --serve=<N>      serving determinism battery: N campaigns over
 *                    fuzzed graphs cycling through every structural
 *                    family, each mixing the three query kinds; every
 *                    campaign runs with {1, 2} host threads x {heap,
 *                    calendar} backends and all four nova-serving-1
 *                    reports must be bit-identical            [off]
 *   --soak=<N>       hard-fault supervision campaign: N supervised
 *                    PageRank runs over fuzzed graphs covering every
 *                    structural family, each with an injected
 *                    permanent GPN death and shard crash at
 *                    fuzz-chosen ticks; every campaign must restart
 *                    at least once, fail over, resume bit-identically
 *                    and still match the reference          [off]
 *   --verbose        print every case as it runs
 */

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "baselines/ligra.hh"
#include "baselines/polygraph.hh"
#include "core/serving.hh"
#include "core/system.hh"
#include "graph/generators.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/profile.hh"
#include "sim/random.hh"
#include "sim/supervise.hh"
#include "graph/graph_stats.hh"
#include "graph/io.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "verify/differential.hh"
#include "verify/fuzz.hh"
#include "verify/replay.hh"
#include "workloads/bc.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;

namespace
{

struct CliOptions
{
    std::string engine = "nova";
    std::string workload = "bfs";
    std::string graphSpec = "twitter";
    std::string mapping = "random";
    std::string fabric = "hier";
    double scale = 1000;
    std::uint32_t gpns = 1;
    std::uint32_t cacheBytes = 0;
    std::uint32_t sbDim = 128;
    std::uint32_t bufferEntries = 80;
    std::int64_t src = -1;
    std::uint64_t seed = 1;
    bool validate = true;
    bool dumpStats = false;
    bool profile = false;
    std::string queueImpl;
    std::uint32_t threads = 0;
    bool deterministicMerge = false;

    // Resilience flags (nova engine only).
    std::string faultSchedule;
    std::uint64_t faultSeed = 0;
    std::uint64_t maxTicks = 0;
    std::uint64_t maxEvents = 0;
    std::uint64_t watchdogEvents = 0;
    std::uint64_t checkpointEvery = 0;
    std::string checkpointFile = "nova.ckpt";
    std::string resumeFile;
    std::uint64_t stopAfter = 0;
    std::string crashBundle;
    unsigned keepGenerations = 1;

    bool
    usesResilience() const
    {
        return !faultSchedule.empty() || maxTicks > 0 || maxEvents > 0 ||
               watchdogEvents > 0 || checkpointEvery > 0 ||
               !resumeFile.empty() || stopAfter > 0 ||
               keepGenerations > 1;
    }
};

bool
takeValue(const char *arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0) {
        out = arg + n;
        return true;
    }
    return false;
}

/** Parse a full numeric option value or die with a usage error. */
std::uint64_t
parseU64(const std::string &text, const char *what, int base = 10)
{
    std::uint64_t value = 0;
    const char *first = text.c_str();
    const char *last = first + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value, base);
    if (ec != std::errc() || ptr != last || text.empty())
        sim::fatal("bad value '", text, "' for ", what);
    return value;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    std::string v;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (takeValue(a, "--engine=", o.engine) ||
            takeValue(a, "--workload=", o.workload) ||
            takeValue(a, "--graph=", o.graphSpec) ||
            takeValue(a, "--mapping=", o.mapping) ||
            takeValue(a, "--fabric=", o.fabric))
            continue;
        if (takeValue(a, "--scale=", v))
            o.scale = std::atof(v.c_str());
        else if (takeValue(a, "--gpns=", v))
            o.gpns = static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--cache=", v))
            o.cacheBytes =
                static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--sbdim=", v))
            o.sbDim = static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--buffer=", v))
            o.bufferEntries =
                static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (takeValue(a, "--src=", v))
            o.src = std::atoll(v.c_str());
        else if (takeValue(a, "--seed=", v))
            o.seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
        else if (takeValue(a, "--faults=", o.faultSchedule) ||
                 takeValue(a, "--checkpoint-file=", o.checkpointFile) ||
                 takeValue(a, "--resume=", o.resumeFile) ||
                 takeValue(a, "--crash-bundle=", o.crashBundle))
            continue;
        else if (takeValue(a, "--fault-seed=", v))
            o.faultSeed = parseU64(v, "--fault-seed");
        else if (takeValue(a, "--max-ticks=", v))
            o.maxTicks = parseU64(v, "--max-ticks");
        else if (takeValue(a, "--max-events=", v))
            o.maxEvents = parseU64(v, "--max-events");
        else if (takeValue(a, "--watchdog=", v))
            o.watchdogEvents = parseU64(v, "--watchdog");
        else if (takeValue(a, "--checkpoint-every=", v))
            o.checkpointEvery = parseU64(v, "--checkpoint-every");
        else if (takeValue(a, "--stop-after=", v))
            o.stopAfter = parseU64(v, "--stop-after");
        else if (takeValue(a, "--keep-generations=", v)) {
            o.keepGenerations = static_cast<unsigned>(
                parseU64(v, "--keep-generations"));
            if (o.keepGenerations == 0)
                sim::fatal("--keep-generations needs at least 1");
        }
        else if (std::strcmp(a, "--no-validate") == 0)
            o.validate = false;
        else if (std::strcmp(a, "--stats") == 0)
            o.dumpStats = true;
        else if (std::strcmp(a, "--profile") == 0)
            o.profile = true;
        else if (takeValue(a, "--queue-impl=", o.queueImpl))
            continue;
        else if (takeValue(a, "--threads=", v))
            o.threads =
                static_cast<std::uint32_t>(parseU64(v, "--threads"));
        else if (std::strcmp(a, "--deterministic-merge") == 0)
            o.deterministicMerge = true;
        else
            sim::fatal("unknown option '", a,
                       "' (see the header of tools/nova_cli.cc)");
    }
    return o;
}

graph::Csr
makeGraph(const CliOptions &o)
{
    const std::string &s = o.graphSpec;
    if (s == "roadusa")
        return graph::makeRoadUsa(o.scale, o.seed).graph;
    if (s == "twitter")
        return graph::makeTwitter(o.scale, o.seed).graph;
    if (s == "friendster")
        return graph::makeFriendster(o.scale, o.seed).graph;
    if (s == "host")
        return graph::makeHost(o.scale, o.seed).graph;
    if (s == "urand")
        return graph::makeUrand(o.scale, o.seed).graph;

    const auto colon1 = s.find(':');
    const std::string kind = s.substr(0, colon1);
    if (kind == "file")
        return graph::loadEdgeListFile(s.substr(colon1 + 1));
    if (kind == "bin")
        return graph::loadBinaryFile(s.substr(colon1 + 1));
    const auto colon2 = s.find(':', colon1 + 1);
    if (colon1 == std::string::npos || colon2 == std::string::npos)
        sim::fatal("bad --graph spec '", s, "'");
    const auto p1 = std::strtoull(s.c_str() + colon1 + 1, nullptr, 10);
    const auto p2 = std::strtoull(s.c_str() + colon2 + 1, nullptr, 10);
    if (kind == "rmat") {
        graph::RmatParams p;
        p.numVertices = static_cast<graph::VertexId>(p1);
        p.numEdges = p2;
        p.maxWeight = 255;
        p.seed = o.seed;
        return graph::generateRmat(p);
    }
    if (kind == "uniform") {
        graph::UniformParams p;
        p.numVertices = static_cast<graph::VertexId>(p1);
        p.numEdges = p2;
        p.maxWeight = 255;
        p.seed = o.seed;
        return graph::generateUniform(p);
    }
    if (kind == "grid") {
        graph::RoadGridParams p;
        p.width = static_cast<graph::VertexId>(p1);
        p.height = static_cast<graph::VertexId>(p2);
        p.maxWeight = 255;
        p.seed = o.seed;
        return graph::generateRoadGrid(p);
    }
    sim::fatal("bad --graph spec '", s, "'");
}

std::unique_ptr<workloads::GraphEngine>
makeEngine(const CliOptions &o)
{
    if (o.engine == "nova") {
        core::NovaConfig cfg = core::NovaConfig{}.scaled(o.scale);
        cfg.numGpns = o.gpns;
        if (o.cacheBytes)
            cfg.cacheBytesPerPe = o.cacheBytes;
        cfg.superblockDim = o.sbDim;
        cfg.activeBufferEntries = o.bufferEntries;
        if (o.fabric == "ideal")
            cfg.fabric = noc::FabricKind::Ideal;
        else if (o.fabric == "p2p")
            cfg.fabric = noc::FabricKind::PointToPoint;
        cfg.faultSchedule = o.faultSchedule;
        cfg.faultSeed = o.faultSeed;
        cfg.maxTicks = o.maxTicks;
        cfg.maxEvents = o.maxEvents;
        cfg.watchdogIntervalEvents = o.watchdogEvents;
        cfg.threads = o.threads;
        cfg.deterministicMerge = o.deterministicMerge;
        if (!o.faultSchedule.empty()) {
            const std::string err =
                sim::FaultInjector::validateSchedule(o.faultSchedule);
            if (!err.empty())
                sim::fatal("bad --faults schedule: ", err);
        }
        auto system = std::make_unique<core::NovaSystem>(cfg);
        core::CheckpointPolicy ckpt;
        ckpt.everyIters = o.checkpointEvery;
        ckpt.path = o.checkpointFile;
        ckpt.resumePath = o.resumeFile;
        ckpt.stopAfterIters = o.stopAfter;
        ckpt.keepGenerations = o.keepGenerations;
        system->setCheckpointPolicy(ckpt);
        return system;
    }
    if (o.usesResilience())
        sim::fatal("--faults/--checkpoint-*/--resume/--stop-after/"
                   "--watchdog/--max-* need --engine=nova");
    if (o.threads > 0 || o.deterministicMerge)
        sim::fatal("--threads/--deterministic-merge need --engine=nova");
    if (o.engine == "polygraph")
        return std::make_unique<baselines::PolyGraphModel>(
            baselines::PolyGraphConfig{}.scaled(o.scale));
    if (o.engine == "ligra")
        return std::make_unique<baselines::LigraEngine>();
    sim::fatal("unknown engine '", o.engine, "'");
}

graph::VertexMapping
makeMapping(const CliOptions &o, const graph::Csr &g,
            std::uint32_t parts)
{
    if (o.mapping == "random")
        return graph::randomMapping(g.numVertices(), parts, o.seed);
    if (o.mapping == "loadbalanced")
        return graph::loadBalancedMapping(g, parts);
    if (o.mapping == "locality")
        return graph::localityMapping(g, parts);
    if (o.mapping == "interleave")
        return graph::VertexMapping::interleave(g.numVertices(), parts);
    sim::fatal("unknown mapping '", o.mapping, "'");
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

void
printDivergences(const verify::CaseOutcome &outcome)
{
    std::printf("divergence in case #%llu (seed 0x%llx, %s)\n",
                static_cast<unsigned long long>(outcome.index),
                static_cast<unsigned long long>(outcome.seed),
                outcome.graphDescription.c_str());
    for (const auto &d : outcome.divergences) {
        std::printf("  %s on %s: %s\n", verify::algoName(d.algo),
                    verify::engineKindName(d.engine), d.detail.c_str());
        std::printf("  repro: nova_cli verify --replay=%s\n",
                    d.replayToken.c_str());
    }
}

/** This binary's own path, for re-exec under supervision. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * Hard-fault supervision campaign (`verify --soak=N`): N supervised
 * PageRank runs over fuzzed graphs, cycling through every structural
 * family, each with a permanent GPN death plus a shard crash injected
 * at fuzz-chosen ticks. The crash forces a restart; the restart must
 * resume from the forced checkpoint, replay the failover, and finish
 * with reference-correct results (the child validates itself). Every
 * campaign must therefore end with exit 0 after >= 1 restart.
 */
int
soakMain(const std::string &self, std::uint64_t seed,
         std::uint64_t campaigns, bool verbose)
{
    std::uint64_t failures = 0, total_restarts = 0, total_migrated = 0;
    std::uint64_t fuzz_index = 0;
    for (std::uint64_t c = 0; c < campaigns; ++c) {
        const auto want = static_cast<verify::GraphFamily>(
            c % verify::numGraphFamilies);
        verify::FuzzedGraph fg;
        do {
            fg = verify::fuzzCase(seed, fuzz_index++);
        } while (fg.family != want);

        // Fuzz-chosen fault ticks, early enough to strike at the first
        // BSP barrier even on degenerate single-vertex graphs. The GPN
        // death and the shard crash land on the same barrier: failover
        // runs first (schedule order), then the crash checkpoints the
        // degraded topology and kills the child.
        sim::Rng rng(seed ^ (c * 0x9e3779b97f4a7c15ULL) ^
                     0x50a4c0ffeeULL);
        const std::uint64_t dead_tick = rng.nextRange(1, 60);
        const std::uint64_t crash_tick =
            dead_tick + rng.nextRange(1, 60);

        const std::string base = "nova_soak_c" + std::to_string(c);
        const std::string gpath = base + ".graph.bin";
        const std::string cpath = base + ".ckpt";
        graph::saveBinaryFile(fg.graph, gpath);
        std::remove(cpath.c_str());
        std::remove((cpath + ".1").c_str());

        sim::SuperviseConfig scfg;
        scfg.childArgv = {
            self,
            "--workload=pr",
            "--graph=bin:" + gpath,
            "--gpns=2",
            "--mapping=interleave",
            "--seed=" + std::to_string(seed + c),
            "--checkpoint-every=1",
            "--checkpoint-file=" + cpath,
            "--keep-generations=2",
            "--crash-bundle=" + base + ".crash.txt",
            "--faults=gpn.dead@gpn1:tick=" + std::to_string(dead_tick) +
                "+shard.crash@gpn0:tick=" + std::to_string(crash_tick),
        };
        scfg.checkpointPath = cpath;
        scfg.keepGenerations = 2;
        scfg.maxRestarts = 3;
        scfg.crashLoopWindow = 2;
        scfg.backoffMs = 0; // campaign throughput; backoff is tested
                            // separately in tests/test_supervise.cc
        const sim::SuperviseResult res = sim::superviseRun(scfg);

        const bool ok = res.finalExit == 0 && res.restarts >= 1;
        if (verbose || !ok)
            std::printf("campaign #%llu (%s, %s): exit %d, %u "
                        "restart(s), %llu vertex(es) migrated%s\n",
                        static_cast<unsigned long long>(c),
                        verify::familyName(fg.family),
                        fg.description.c_str(), res.finalExit,
                        res.restarts,
                        static_cast<unsigned long long>(
                            res.migratedVertices),
                        ok ? "" : " FAILED");
        if (!ok) {
            ++failures;
            continue; // keep the campaign's files for debugging
        }
        total_restarts += res.restarts;
        total_migrated += res.migratedVertices;
        std::remove(gpath.c_str());
        std::remove(cpath.c_str());
        std::remove((cpath + ".1").c_str());
        std::remove((base + ".crash.txt").c_str());
    }

    // The campaign as a whole must have exercised slice remapping:
    // interleaved mappings put vertices on the dead GPN whenever the
    // graph is big enough, and the families include plenty that are.
    const bool remapped = total_migrated > 0;
    std::printf("soak: %llu campaigns, %llu failed, %llu restarts, "
                "%llu vertices migrated [seed %llu]\n",
                static_cast<unsigned long long>(campaigns),
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(total_restarts),
                static_cast<unsigned long long>(total_migrated),
                static_cast<unsigned long long>(seed));
    if (!remapped)
        std::printf("soak: FAILED — no campaign migrated any vertex "
                    "slice\n");
    return failures == 0 && remapped ? 0 : 1;
}

/**
 * `nova_cli serve ...`: one multi-tenant serving campaign
 * (docs/SERVING.md). Prints the canonical nova-serving-1 report on
 * stdout, or writes it to --report=<path> and prints a short summary.
 */
int
serveMain(int argc, char **argv)
{
    core::ServingConfig scfg;
    std::string arrivals = "poisson:4000000";
    std::string queue_impl;
    std::string report_path;
    bool dump_stats = false;

    std::string v;
    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        if (takeValue(a, "--graph=", scfg.graphSpec) ||
            takeValue(a, "--arrivals=", arrivals) ||
            takeValue(a, "--queue-impl=", queue_impl) ||
            takeValue(a, "--report=", report_path) ||
            takeValue(a, "--ckpt-file=", scfg.ckptPath) ||
            takeValue(a, "--resume=", scfg.resumePath))
            continue;
        if (takeValue(a, "--tenants=", v))
            scfg.tenants =
                static_cast<std::uint32_t>(parseU64(v, "--tenants"));
        else if (takeValue(a, "--duration=", v))
            scfg.duration = parseU64(v, "--duration");
        else if (takeValue(a, "--groups=", v))
            scfg.groups =
                static_cast<std::uint32_t>(parseU64(v, "--groups"));
        else if (takeValue(a, "--gpns-per-group=", v))
            scfg.gpnsPerGroup = static_cast<std::uint32_t>(
                parseU64(v, "--gpns-per-group"));
        else if (takeValue(a, "--quota=", v))
            scfg.quotaPerTenant =
                static_cast<std::uint32_t>(parseU64(v, "--quota"));
        else if (takeValue(a, "--queue-cap=", v))
            scfg.queueCap =
                static_cast<std::uint32_t>(parseU64(v, "--queue-cap"));
        else if (takeValue(a, "--batch-max=", v))
            scfg.batchMax =
                static_cast<std::uint32_t>(parseU64(v, "--batch-max"));
        else if (takeValue(a, "--batch-window=", v))
            scfg.batchWindow = parseU64(v, "--batch-window");
        else if (takeValue(a, "--setup=", v))
            scfg.setupTicks = parseU64(v, "--setup");
        else if (takeValue(a, "--contention=", v))
            scfg.contentionPct =
                static_cast<std::uint32_t>(parseU64(v, "--contention"));
        else if (takeValue(a, "--scale=", v))
            scfg.scale = std::atof(v.c_str());
        else if (takeValue(a, "--seed=", v))
            scfg.seed = parseU64(v, "--seed");
        else if (takeValue(a, "--threads=", v)) {
            scfg.threads =
                static_cast<std::uint32_t>(parseU64(v, "--threads"));
            if (scfg.threads == 0)
                sim::fatal("serve needs --threads >= 1 (engine runs "
                           "are always sharded; docs/SERVING.md)");
        }
        else if (takeValue(a, "--ppr-iters=", v))
            scfg.pprIters = parseU64(v, "--ppr-iters");
        else if (takeValue(a, "--ckpt-every=", v))
            scfg.ckptEvery = parseU64(v, "--ckpt-every");
        else if (takeValue(a, "--stop-after=", v))
            scfg.stopAfter = parseU64(v, "--stop-after");
        else if (takeValue(a, "--keep-generations=", v)) {
            scfg.keepGenerations = static_cast<unsigned>(
                parseU64(v, "--keep-generations"));
            if (scfg.keepGenerations == 0)
                sim::fatal("--keep-generations needs at least 1");
        }
        else if (std::strcmp(a, "--stats") == 0)
            dump_stats = true;
        else
            sim::fatal("unknown serve option '", a,
                       "' (see the header of tools/nova_cli.cc)");
    }
    scfg.arrivals = sim::ArrivalSpec::parse(arrivals);

    std::optional<sim::EventQueue::ScopedDefaultImpl> forced_impl;
    if (!queue_impl.empty()) {
        if (queue_impl == "calendar")
            forced_impl.emplace(sim::EventQueue::Impl::Calendar);
        else if (queue_impl == "legacy")
            forced_impl.emplace(sim::EventQueue::Impl::LegacyHeap);
        else
            sim::fatal("--queue-impl must be 'calendar' or 'legacy', "
                       "not '", queue_impl, "'");
    }

    CliOptions gopt;
    gopt.graphSpec = scfg.graphSpec;
    gopt.scale = scfg.scale;
    gopt.seed = scfg.seed;
    const graph::Csr g = makeGraph(gopt);

    core::ServingSystem sys(scfg, g);
    const core::ServingReport rep = sys.run();

    if (report_path.empty()) {
        std::printf("%s", rep.json.c_str());
    } else {
        std::ofstream os(report_path, std::ios::trunc);
        os << rep.json;
        if (!os)
            sim::fatal("cannot write serving report ", report_path);
        std::printf("serve: %s%llu offered, %llu served, %llu shed, "
                    "%llu batches over %s (V=%u, E=%llu)\n",
                    rep.stopped ? "(stopped) " : "",
                    static_cast<unsigned long long>(rep.offered),
                    static_cast<unsigned long long>(rep.served),
                    static_cast<unsigned long long>(rep.shed),
                    static_cast<unsigned long long>(rep.batches),
                    scfg.graphSpec.c_str(), g.numVertices(),
                    static_cast<unsigned long long>(g.numEdges()));
        std::printf("serve: fingerprint 0x%llx, report %s\n",
                    static_cast<unsigned long long>(rep.fingerprint),
                    report_path.c_str());
    }
    if (dump_stats) {
        std::map<std::string, double> flat;
        sys.stats().collect(flat);
        for (const auto &[k, val] : flat)
            std::printf("  %-42s %.6g\n", k.c_str(), val);
    }
    return 0;
}

/**
 * `verify --serve=N`: the serving determinism battery. Each campaign
 * draws a fuzzed graph (cycling through every structural family), runs
 * the same mixed-kind campaign under {1, 2} host threads x {heap,
 * calendar} queue backends, and requires all four reports to be
 * bit-identical text.
 */
int
serveVerifyMain(std::uint64_t seed, std::uint64_t campaigns,
                bool verbose)
{
    std::uint64_t failures = 0;
    std::uint64_t fuzz_index = 0;
    for (std::uint64_t c = 0; c < campaigns; ++c) {
        const auto want = static_cast<verify::GraphFamily>(
            c % verify::numGraphFamilies);
        verify::FuzzedGraph fg;
        do {
            fg = verify::fuzzCase(seed, fuzz_index++);
        } while (fg.family != want ||
                 fg.graph.numVertices() == 0);

        core::ServingConfig base;
        base.graphSpec = "fuzz:" + std::string(
            verify::familyName(fg.family));
        base.arrivals = sim::ArrivalSpec::parse("poisson:10000");
        base.seed = seed ^ (c * 0x9e3779b97f4a7c15ULL);
        base.tenants = 2 + static_cast<std::uint32_t>(c % 3);
        base.duration = 400'000;
        base.groups = 1 + static_cast<std::uint32_t>(c % 2);
        base.quotaPerTenant = 4;
        base.queueCap = 6;   // small: overload paths get exercised
        base.batchMax = 3;
        base.batchWindow = 20'000;
        base.scale = 100;    // small engine: campaign speed

        struct Combo { std::uint32_t threads;
                       sim::EventQueue::Impl impl;
                       const char *name; };
        const std::vector<Combo> combos = {
            {1, sim::EventQueue::Impl::LegacyHeap, "t1/heap"},
            {1, sim::EventQueue::Impl::Calendar, "t1/calendar"},
            {2, sim::EventQueue::Impl::LegacyHeap, "t2/heap"},
            {2, sim::EventQueue::Impl::Calendar, "t2/calendar"},
        };
        std::string first;
        bool ok = true;
        std::uint64_t served = 0, shed = 0;
        for (const Combo &combo : combos) {
            sim::EventQueue::ScopedDefaultImpl forced(combo.impl);
            core::ServingConfig cc = base;
            cc.threads = combo.threads;
            core::ServingSystem sys(cc, fg.graph);
            const core::ServingReport rep = sys.run();
            if (first.empty()) {
                first = rep.json;
                served = rep.served;
                shed = rep.shed;
            } else if (rep.json != first) {
                ok = false;
                std::printf("serve campaign #%llu (%s): report "
                            "DIVERGED on %s\n",
                            static_cast<unsigned long long>(c),
                            fg.description.c_str(), combo.name);
            }
        }
        if (verbose || !ok)
            std::printf("serve campaign #%llu (%s, %s): %llu served, "
                        "%llu shed%s\n",
                        static_cast<unsigned long long>(c),
                        verify::familyName(fg.family),
                        fg.description.c_str(),
                        static_cast<unsigned long long>(served),
                        static_cast<unsigned long long>(shed),
                        ok ? "" : " FAILED");
        if (!ok)
            ++failures;
    }
    std::printf("serve battery: %llu campaigns, %llu diverging "
                "[seed %llu]\n",
                static_cast<unsigned long long>(campaigns),
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(seed));
    return failures == 0 ? 0 : 1;
}

int
verifyMain(int argc, char **argv)
{
    std::uint64_t iterations = 100;
    std::uint64_t seed = 1;
    std::uint64_t soak = 0;
    std::uint64_t serve = 0;
    std::string replay_token;
    bool verbose = false;
    verify::DiffOptions opt;

    std::string v;
    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        if (takeValue(a, "--fuzz=", v))
            iterations = parseU64(v, "--fuzz");
        else if (takeValue(a, "--soak=", v)) {
            soak = parseU64(v, "--soak");
            if (soak == 0)
                sim::fatal("--soak needs at least one campaign");
        }
        else if (takeValue(a, "--serve=", v)) {
            serve = parseU64(v, "--serve");
            if (serve == 0)
                sim::fatal("--serve needs at least one campaign");
        }
        else if (takeValue(a, "--seed=", v))
            seed = parseU64(v, "--seed");
        else if (takeValue(a, "--max-v=", v))
            opt.fuzzer.maxVertices =
                static_cast<graph::VertexId>(parseU64(v, "--max-v"));
        else if (takeValue(a, "--max-e=", v))
            opt.fuzzer.maxEdges =
                static_cast<graph::EdgeId>(parseU64(v, "--max-e"));
        else if (takeValue(a, "--algos=", v)) {
            opt.algos.clear();
            for (const std::string &name : splitCommas(v)) {
                verify::Algo algo;
                if (!verify::algoFromName(name, algo))
                    sim::fatal("unknown algorithm '", name, "'");
                opt.algos.push_back(algo);
            }
        } else if (takeValue(a, "--engines=", v)) {
            opt.engines.clear();
            for (const std::string &name : splitCommas(v)) {
                verify::EngineKind kind;
                if (!verify::engineKindFromName(name, kind))
                    sim::fatal("unknown engine '", name, "'");
                opt.engines.push_back(kind);
            }
        } else if (takeValue(a, "--inject-fault=", v) ||
                   takeValue(a, "--inject-recovered=", v)) {
            opt.fault.enabled = true;
            opt.fault.recover =
                std::strncmp(a, "--inject-recovered=", 19) == 0;
            opt.fault.xorMask = ~std::uint64_t(0);
            const std::size_t colon = v.find(':');
            opt.fault.afterReduces =
                parseU64(v.substr(0, colon), "--inject-fault");
            if (colon != std::string::npos)
                opt.fault.xorMask = parseU64(
                    v.substr(colon + 1), "--inject-fault mask", 16);
        } else if (takeValue(a, "--faults=", v)) {
            const std::string err =
                sim::FaultInjector::validateSchedule(v);
            if (!err.empty())
                sim::fatal("bad --faults schedule: ", err);
            opt.faultSchedule = v;
        } else if (takeValue(a, "--replay=", v))
            replay_token = v;
        else if (std::strcmp(a, "--cross-queue") == 0)
            opt.crossCheckQueueImpls = true;
        else if (std::strcmp(a, "--cross-sched") == 0)
            opt.crossCheckSchedThreads = 4;
        else if (takeValue(a, "--cross-sched=", v)) {
            opt.crossCheckSchedThreads = static_cast<std::uint32_t>(
                parseU64(v, "--cross-sched"));
            if (opt.crossCheckSchedThreads == 0)
                sim::fatal("--cross-sched needs a thread count >= 1");
        }
        else if (std::strcmp(a, "--verbose") == 0)
            verbose = true;
        else
            sim::fatal("unknown verify option '", a,
                       "' (see the header of tools/nova_cli.cc)");
    }
    if (opt.fuzzer.maxVertices < 8 || opt.fuzzer.maxEdges < 16)
        sim::fatal("fuzzer bounds too small: need --max-v >= 8 and "
                   "--max-e >= 16");

    if (soak > 0)
        return soakMain(selfExePath(argv[0]), seed, soak, verbose);
    if (serve > 0)
        return serveVerifyMain(seed, serve, verbose);

    if (!replay_token.empty()) {
        verify::ReplayCase c;
        if (!verify::parseReplayToken(replay_token, c))
            sim::fatal("malformed replay token '", replay_token, "'");
        std::printf("replay %s: case #%llu, %s on %s%s\n",
                    replay_token.c_str(),
                    static_cast<unsigned long long>(c.index),
                    verify::algoName(c.algo),
                    verify::engineKindName(c.engine),
                    c.fault.enabled ? " (with injected fault)" : "");
        const verify::CaseOutcome outcome = verify::replayCase(c);
        std::printf("graph: %s\n", outcome.graphDescription.c_str());
        for (const auto &rec : outcome.runs)
            std::printf("run %s on %s: fingerprint 0x%llx, "
                        "recoveries %llu\n",
                        verify::algoName(rec.algo),
                        verify::engineKindName(rec.engine),
                        static_cast<unsigned long long>(rec.fingerprint),
                        static_cast<unsigned long long>(rec.recoveries));
        if (outcome.ok()) {
            std::printf("replay: no divergence\n");
            return 0;
        }
        printDivergences(outcome);
        return 1;
    }

    const verify::FuzzSummary summary = verify::runFuzz(
        seed, iterations, opt, [verbose](const verify::CaseOutcome &outcome) {
            if (verbose)
                std::printf("case #%llu: %s: %s\n",
                            static_cast<unsigned long long>(outcome.index),
                            outcome.graphDescription.c_str(),
                            outcome.ok() ? "ok" : "DIVERGED");
            if (!outcome.ok())
                printDivergences(outcome);
        });

    std::printf("verify: %llu cases, %llu engine runs, %zu diverging "
                "cases [seed %llu]\n",
                static_cast<unsigned long long>(summary.casesRun),
                static_cast<unsigned long long>(summary.runsExecuted),
                summary.failures.size(),
                static_cast<unsigned long long>(seed));
    return summary.ok() ? 0 : 1;
}

/**
 * `nova_cli --supervise ...`: re-run this command as a supervised child
 * (with the supervisor-only flags stripped), restarting it from the
 * newest valid checkpoint generation when it crashes. Exit code is the
 * child's final one, or sim::exitSupervisionFailed (3) on give-up.
 */
int
superviseMain(int argc, char **argv)
{
    sim::SuperviseConfig scfg;
    std::string ckpt_file = "nova.ckpt";
    std::vector<std::string> child;
    child.push_back(selfExePath(argv[0]));
    std::string v;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--supervise") == 0)
            continue;
        if (takeValue(a, "--max-restarts=", v)) {
            scfg.maxRestarts =
                static_cast<unsigned>(parseU64(v, "--max-restarts"));
            continue;
        }
        if (takeValue(a, "--backoff-ms=", v)) {
            scfg.backoffMs = parseU64(v, "--backoff-ms");
            continue;
        }
        if (takeValue(a, "--crash-loop=", v)) {
            scfg.crashLoopWindow =
                static_cast<unsigned>(parseU64(v, "--crash-loop"));
            if (scfg.crashLoopWindow == 0)
                sim::fatal("--crash-loop needs at least 1");
            continue;
        }
        if (takeValue(a, "--recovery-report=", scfg.reportPath))
            continue;
        // Shared with the child: the supervisor must look for fallback
        // generations exactly where the child writes them.
        if (takeValue(a, "--checkpoint-file=", ckpt_file)) {
            child.push_back(a);
            continue;
        }
        if (takeValue(a, "--keep-generations=", v)) {
            scfg.keepGenerations =
                static_cast<unsigned>(parseU64(v, "--keep-generations"));
            child.push_back(a);
            continue;
        }
        child.push_back(a);
    }
    scfg.checkpointPath = ckpt_file;
    scfg.childArgv = std::move(child);

    const sim::SuperviseResult res = sim::superviseRun(scfg);
    if (!scfg.reportPath.empty()) {
        std::ofstream os(scfg.reportPath, std::ios::trunc);
        os << sim::recoveryReportJson(scfg, res);
        if (!os)
            sim::fatal("cannot write recovery report ",
                       scfg.reportPath);
    }
    std::printf("supervision: exit %d after %u restart(s)%s%s\n",
                res.finalExit, res.restarts,
                res.crashLoop ? " (crash loop)" : "",
                res.retriesExhausted ? " (retries exhausted)" : "");
    return res.finalExit;
}

/** The exact command line, quoted for the crash-bundle replay line. */
std::string
reconstructCommand(int argc, char **argv)
{
    std::string cmd = "nova_cli";
    for (int i = 1; i < argc; ++i) {
        cmd += ' ';
        cmd += argv[i];
    }
    return cmd;
}

int
cliMain(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "verify") == 0)
        return verifyMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return serveMain(argc, argv);
    // "nova_cli run ..." is an accepted alias for the default mode.
    if (argc > 1 && std::strcmp(argv[1], "run") == 0) {
        --argc;
        ++argv;
    }
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--supervise") == 0)
            return superviseMain(argc, argv);
    const CliOptions o = parseArgs(argc, argv);
    if (!o.crashBundle.empty())
        sim::crash::setBundlePath(o.crashBundle);

    std::optional<sim::EventQueue::ScopedDefaultImpl> forced_impl;
    if (!o.queueImpl.empty()) {
        if (o.queueImpl == "calendar")
            forced_impl.emplace(sim::EventQueue::Impl::Calendar);
        else if (o.queueImpl == "legacy")
            forced_impl.emplace(sim::EventQueue::Impl::LegacyHeap);
        else
            sim::fatal("--queue-impl must be 'calendar' or 'legacy', not '",
                       o.queueImpl, "'");
    }
    if (o.profile)
        sim::profile::Registry::instance().arm();

    graph::Csr g = makeGraph(o);
    const bool needs_symmetric = o.workload == "cc" || o.workload == "bc";
    if (needs_symmetric)
        g = graph::symmetrize(g);
    const graph::VertexId src =
        o.src >= 0 ? static_cast<graph::VertexId>(o.src)
                   : graph::highestDegreeVertex(g);

    auto engine = makeEngine(o);
    const std::uint32_t parts =
        o.engine == "nova" ? o.gpns * 8 : 1;
    const auto map = makeMapping(o, g, parts);

    std::printf("engine=%s workload=%s graph=%s (V=%u, E=%llu) src=%u\n",
                o.engine.c_str(), o.workload.c_str(),
                o.graphSpec.c_str(), g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()), src);

    workloads::RunResult r;
    bool valid = true;
    namespace ref = workloads::reference;
    if (o.workload == "bfs") {
        workloads::BfsProgram prog(src);
        r = engine->run(prog, g, map);
        if (o.validate)
            valid = r.props == ref::bfsDepths(g, src);
    } else if (o.workload == "sssp") {
        workloads::SsspProgram prog(src);
        r = engine->run(prog, g, map);
        if (o.validate)
            valid = r.props == ref::ssspDistances(g, src);
    } else if (o.workload == "cc") {
        workloads::CcProgram prog;
        r = engine->run(prog, g, map);
        if (o.validate)
            valid = r.props == ref::ccLabels(g);
    } else if (o.workload == "pr") {
        workloads::PageRankProgram prog(0.85, 1e-9, 10);
        r = engine->run(prog, g, map);
        if (o.validate) {
            const auto want = ref::pagerankDelta(g, 0.85, 1e-9, 10);
            for (graph::VertexId v = 0; v < g.numVertices(); ++v)
                valid = valid && std::abs(prog.rank()[v] - want[v]) <=
                                     1e-9 + 1e-5 * want[v];
        }
    } else if (o.workload == "bc") {
        const auto bc = workloads::runBc(*engine, g, map, src);
        r = bc.forward;
        r.ticks = bc.totalTicks();
        r.messagesGenerated = bc.totalEdgesTraversed();
        if (o.validate) {
            const auto want = ref::bcDependencies(g, src);
            for (graph::VertexId v = 0; v < g.numVertices(); ++v)
                valid = valid &&
                        std::abs(bc.centrality[v] - want[v]) <=
                            1e-4 + 1e-2 * std::abs(want[v]);
        }
    } else {
        sim::fatal("unknown workload '", o.workload, "'");
    }

    std::printf("time: %.6f ms %s\n", r.seconds() * 1e3,
                o.engine == "ligra" ? "(wall)" : "(simulated)");
    std::printf("throughput: %.3f GTEPS over %llu traversed edges\n",
                r.gteps(),
                static_cast<unsigned long long>(r.messagesGenerated));
    std::printf("coalesced: %.2f%%; BSP supersteps: %llu\n",
                100 * r.coalescingRate(),
                static_cast<unsigned long long>(r.bspIterations));
    if (const auto fp = r.extra.find("sim.fingerprint");
        fp != r.extra.end())
        std::printf("fingerprint: 0x%llx\n",
                    static_cast<unsigned long long>(fp->second));
    if (const auto mfp = r.extra.find("sim.mergedFingerprint");
        mfp != r.extra.end())
        std::printf("merged fingerprint: 0x%llx over %llu shards\n",
                    static_cast<unsigned long long>(mfp->second),
                    static_cast<unsigned long long>(
                        r.extra.at("sim.shards")));
    if (const auto rec = r.extra.find("fault.recoveries");
        rec != r.extra.end())
        std::printf("faults: %llu injected, %llu recovered\n",
                    static_cast<unsigned long long>(
                        r.extra.at("fault.injected")),
                    static_cast<unsigned long long>(rec->second));
    if (r.stoppedAtCheckpoint) {
        // Partial state: the reference comparison is meaningless here.
        std::printf("stopped at checkpoint '%s' after superstep %llu\n",
                    o.checkpointFile.c_str(),
                    static_cast<unsigned long long>(r.bspIterations));
        return 0;
    }
    if (o.validate)
        std::printf("validation: %s\n", valid ? "OK" : "MISMATCH");
    if (o.profile) {
        std::printf("%s",
                    sim::profile::Registry::instance().table().c_str());
        for (const auto &[k, val] : r.extra)
            if (k.rfind("profile.", 0) == 0)
                std::printf("  %-42s %.6g\n", k.c_str(), val);
    }
    if (o.dumpStats)
        for (const auto &[k, val] : r.extra)
            std::printf("  %-42s %.6g\n", k.c_str(), val);
    return valid ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::crash::setReplayToken(reconstructCommand(argc, argv));
    try {
        return cliMain(argc, argv);
    } catch (const sim::FatalError &e) {
        // User error: bad flags, bad input, unusable configuration.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const sim::PanicError &e) {
        // Simulator bug. NovaSystem::run writes the bundle while its
        // components are still alive; write a minimal one only if that
        // didn't happen (e.g. a panic outside any run).
        std::fprintf(stderr, "simulator bug: %s\n", e.what());
        std::string bundle = sim::crash::lastBundle();
        if (bundle.empty())
            bundle = sim::crash::writeBundle(e.what());
        if (!bundle.empty())
            std::fprintf(stderr, "crash bundle: %s\n", bundle.c_str());
        if (!sim::crash::replayToken().empty())
            std::fprintf(stderr, "replay: %s\n",
                         sim::crash::replayToken().c_str());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "internal error: %s\n", e.what());
        return 2;
    }
}
