/**
 * @file
 * nova_supervise — run any command under the crash-recovery supervisor
 * (docs/RESILIENCE.md, "Supervision").
 *
 *   nova_supervise [options] -- <command> [args...]
 *   nova_supervise --checkpoint-file=run.ckpt --keep-generations=3 \
 *       --recovery-report=recovery.json -- \
 *       nova_cli --workload=pr --graph=twitter --gpns=2 \
 *           --checkpoint-every=2 --checkpoint-file=run.ckpt \
 *           --keep-generations=3
 *
 * The child is classified by the nova_cli exit contract (0 success,
 * 1 user error, 2 crash; a signal counts as a crash). On a crash the
 * supervisor restarts the command with `--resume=<newest valid
 * generation>` appended, after an exponentially growing backoff.
 *
 * Options:
 *   --checkpoint-file=<p>  generation chain root the child writes
 *                          (enables resume-on-restart)   [nova.ckpt]
 *   --keep-generations=<k> generations the child keeps        [1]
 *   --max-restarts=<n>     restarts allowed after the first    [5]
 *   --backoff-ms=<n>       first restart delay, doubles      [100]
 *   --crash-loop=<n>       consecutive no-progress crashes that
 *                          give up as a crash loop             [3]
 *   --recovery-report=<p>  write a JSON report (nova-recovery-1)
 *
 * Exit codes: the child's final exit (0 or 1), or 3 when supervision
 * gives up (retries exhausted or crash loop).
 */

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/supervise.hh"

using namespace nova;

namespace
{

bool
takeValue(const char *arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0) {
        out = arg + n;
        return true;
    }
    return false;
}

std::uint64_t
parseU64(const std::string &text, const char *what)
{
    std::uint64_t value = 0;
    const char *first = text.c_str();
    const char *last = first + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || text.empty())
        sim::fatal("bad value '", text, "' for ", what);
    return value;
}

int
superviseMain(int argc, char **argv)
{
    sim::SuperviseConfig cfg;
    cfg.checkpointPath = "nova.ckpt";
    std::string v;
    int i = 1;
    for (; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--") == 0) {
            ++i;
            break;
        }
        if (takeValue(a, "--checkpoint-file=", cfg.checkpointPath) ||
            takeValue(a, "--recovery-report=", cfg.reportPath))
            continue;
        if (takeValue(a, "--keep-generations=", v))
            cfg.keepGenerations =
                static_cast<unsigned>(parseU64(v, "--keep-generations"));
        else if (takeValue(a, "--max-restarts=", v))
            cfg.maxRestarts =
                static_cast<unsigned>(parseU64(v, "--max-restarts"));
        else if (takeValue(a, "--backoff-ms=", v))
            cfg.backoffMs = parseU64(v, "--backoff-ms");
        else if (takeValue(a, "--crash-loop=", v)) {
            cfg.crashLoopWindow =
                static_cast<unsigned>(parseU64(v, "--crash-loop"));
            if (cfg.crashLoopWindow == 0)
                sim::fatal("--crash-loop needs at least 1");
        } else
            sim::fatal("unknown option '", a,
                       "' (see the header of tools/nova_supervise.cc)");
    }
    for (; i < argc; ++i)
        cfg.childArgv.push_back(argv[i]);
    if (cfg.childArgv.empty())
        sim::fatal("usage: nova_supervise [options] -- <command> "
                   "[args...]");
    if (cfg.keepGenerations == 0)
        sim::fatal("--keep-generations needs at least 1");

    const sim::SuperviseResult res = sim::superviseRun(cfg);
    if (!cfg.reportPath.empty()) {
        std::ofstream os(cfg.reportPath, std::ios::trunc);
        os << sim::recoveryReportJson(cfg, res);
        if (!os)
            sim::fatal("cannot write recovery report ", cfg.reportPath);
    }
    std::printf("supervision: exit %d after %u restart(s)%s%s\n",
                res.finalExit, res.restarts,
                res.crashLoop ? " (crash loop)" : "",
                res.retriesExhausted ? " (retries exhausted)" : "");
    return res.finalExit;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return superviseMain(argc, argv);
    } catch (const sim::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "internal error: %s\n", e.what());
        return 2;
    }
}
