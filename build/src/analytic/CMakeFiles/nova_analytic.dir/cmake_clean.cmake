file(REMOVE_RECURSE
  "CMakeFiles/nova_analytic.dir/fpga.cc.o"
  "CMakeFiles/nova_analytic.dir/fpga.cc.o.d"
  "CMakeFiles/nova_analytic.dir/scaling.cc.o"
  "CMakeFiles/nova_analytic.dir/scaling.cc.o.d"
  "libnova_analytic.a"
  "libnova_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
