
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/fpga.cc" "src/analytic/CMakeFiles/nova_analytic.dir/fpga.cc.o" "gcc" "src/analytic/CMakeFiles/nova_analytic.dir/fpga.cc.o.d"
  "/root/repo/src/analytic/scaling.cc" "src/analytic/CMakeFiles/nova_analytic.dir/scaling.cc.o" "gcc" "src/analytic/CMakeFiles/nova_analytic.dir/scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
