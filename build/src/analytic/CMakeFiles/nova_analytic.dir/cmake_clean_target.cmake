file(REMOVE_RECURSE
  "libnova_analytic.a"
)
