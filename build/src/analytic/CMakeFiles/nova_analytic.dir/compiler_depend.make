# Empty compiler generated dependencies file for nova_analytic.
# This may be replaced when dependencies are built.
