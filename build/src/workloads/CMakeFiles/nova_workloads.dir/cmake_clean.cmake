file(REMOVE_RECURSE
  "CMakeFiles/nova_workloads.dir/bc.cc.o"
  "CMakeFiles/nova_workloads.dir/bc.cc.o.d"
  "CMakeFiles/nova_workloads.dir/reference.cc.o"
  "CMakeFiles/nova_workloads.dir/reference.cc.o.d"
  "libnova_workloads.a"
  "libnova_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
