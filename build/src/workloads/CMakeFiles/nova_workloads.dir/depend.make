# Empty dependencies file for nova_workloads.
# This may be replaced when dependencies are built.
