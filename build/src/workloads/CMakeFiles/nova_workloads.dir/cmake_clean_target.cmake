file(REMOVE_RECURSE
  "libnova_workloads.a"
)
