file(REMOVE_RECURSE
  "CMakeFiles/nova_graph.dir/csr.cc.o"
  "CMakeFiles/nova_graph.dir/csr.cc.o.d"
  "CMakeFiles/nova_graph.dir/generators.cc.o"
  "CMakeFiles/nova_graph.dir/generators.cc.o.d"
  "CMakeFiles/nova_graph.dir/graph_stats.cc.o"
  "CMakeFiles/nova_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/nova_graph.dir/io.cc.o"
  "CMakeFiles/nova_graph.dir/io.cc.o.d"
  "CMakeFiles/nova_graph.dir/partition.cc.o"
  "CMakeFiles/nova_graph.dir/partition.cc.o.d"
  "CMakeFiles/nova_graph.dir/presets.cc.o"
  "CMakeFiles/nova_graph.dir/presets.cc.o.d"
  "CMakeFiles/nova_graph.dir/reorder.cc.o"
  "CMakeFiles/nova_graph.dir/reorder.cc.o.d"
  "libnova_graph.a"
  "libnova_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
