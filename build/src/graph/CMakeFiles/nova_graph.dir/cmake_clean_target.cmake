file(REMOVE_RECURSE
  "libnova_graph.a"
)
