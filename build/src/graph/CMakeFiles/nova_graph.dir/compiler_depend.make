# Empty compiler generated dependencies file for nova_graph.
# This may be replaced when dependencies are built.
