
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/nova_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/nova_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/nova_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/nova_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/nova_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/nova_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/nova_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/nova_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/nova_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/nova_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/presets.cc" "src/graph/CMakeFiles/nova_graph.dir/presets.cc.o" "gcc" "src/graph/CMakeFiles/nova_graph.dir/presets.cc.o.d"
  "/root/repo/src/graph/reorder.cc" "src/graph/CMakeFiles/nova_graph.dir/reorder.cc.o" "gcc" "src/graph/CMakeFiles/nova_graph.dir/reorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
