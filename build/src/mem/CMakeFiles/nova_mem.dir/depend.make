# Empty dependencies file for nova_mem.
# This may be replaced when dependencies are built.
