file(REMOVE_RECURSE
  "CMakeFiles/nova_mem.dir/cache.cc.o"
  "CMakeFiles/nova_mem.dir/cache.cc.o.d"
  "CMakeFiles/nova_mem.dir/dram.cc.o"
  "CMakeFiles/nova_mem.dir/dram.cc.o.d"
  "libnova_mem.a"
  "libnova_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
