file(REMOVE_RECURSE
  "libnova_mem.a"
)
