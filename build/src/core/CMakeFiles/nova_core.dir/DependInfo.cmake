
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/nova_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/nova_core.dir/config.cc.o.d"
  "/root/repo/src/core/mgu.cc" "src/core/CMakeFiles/nova_core.dir/mgu.cc.o" "gcc" "src/core/CMakeFiles/nova_core.dir/mgu.cc.o.d"
  "/root/repo/src/core/mpu.cc" "src/core/CMakeFiles/nova_core.dir/mpu.cc.o" "gcc" "src/core/CMakeFiles/nova_core.dir/mpu.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/nova_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/nova_core.dir/system.cc.o.d"
  "/root/repo/src/core/vertex_store.cc" "src/core/CMakeFiles/nova_core.dir/vertex_store.cc.o" "gcc" "src/core/CMakeFiles/nova_core.dir/vertex_store.cc.o.d"
  "/root/repo/src/core/vmu.cc" "src/core/CMakeFiles/nova_core.dir/vmu.cc.o" "gcc" "src/core/CMakeFiles/nova_core.dir/vmu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nova_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nova_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nova_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nova_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
