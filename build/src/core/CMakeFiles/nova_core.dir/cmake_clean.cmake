file(REMOVE_RECURSE
  "CMakeFiles/nova_core.dir/config.cc.o"
  "CMakeFiles/nova_core.dir/config.cc.o.d"
  "CMakeFiles/nova_core.dir/mgu.cc.o"
  "CMakeFiles/nova_core.dir/mgu.cc.o.d"
  "CMakeFiles/nova_core.dir/mpu.cc.o"
  "CMakeFiles/nova_core.dir/mpu.cc.o.d"
  "CMakeFiles/nova_core.dir/system.cc.o"
  "CMakeFiles/nova_core.dir/system.cc.o.d"
  "CMakeFiles/nova_core.dir/vertex_store.cc.o"
  "CMakeFiles/nova_core.dir/vertex_store.cc.o.d"
  "CMakeFiles/nova_core.dir/vmu.cc.o"
  "CMakeFiles/nova_core.dir/vmu.cc.o.d"
  "libnova_core.a"
  "libnova_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
