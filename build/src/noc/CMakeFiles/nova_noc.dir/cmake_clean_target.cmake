file(REMOVE_RECURSE
  "libnova_noc.a"
)
