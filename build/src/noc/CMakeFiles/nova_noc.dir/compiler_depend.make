# Empty compiler generated dependencies file for nova_noc.
# This may be replaced when dependencies are built.
