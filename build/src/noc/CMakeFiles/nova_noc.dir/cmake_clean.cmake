file(REMOVE_RECURSE
  "CMakeFiles/nova_noc.dir/network.cc.o"
  "CMakeFiles/nova_noc.dir/network.cc.o.d"
  "libnova_noc.a"
  "libnova_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
