file(REMOVE_RECURSE
  "CMakeFiles/nova_sim.dir/event_queue.cc.o"
  "CMakeFiles/nova_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/nova_sim.dir/random.cc.o"
  "CMakeFiles/nova_sim.dir/random.cc.o.d"
  "CMakeFiles/nova_sim.dir/stats.cc.o"
  "CMakeFiles/nova_sim.dir/stats.cc.o.d"
  "libnova_sim.a"
  "libnova_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
