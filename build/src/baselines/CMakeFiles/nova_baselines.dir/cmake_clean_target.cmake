file(REMOVE_RECURSE
  "libnova_baselines.a"
)
