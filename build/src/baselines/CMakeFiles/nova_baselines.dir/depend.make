# Empty dependencies file for nova_baselines.
# This may be replaced when dependencies are built.
