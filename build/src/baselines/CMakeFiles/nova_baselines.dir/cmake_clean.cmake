file(REMOVE_RECURSE
  "CMakeFiles/nova_baselines.dir/ligra.cc.o"
  "CMakeFiles/nova_baselines.dir/ligra.cc.o.d"
  "CMakeFiles/nova_baselines.dir/polygraph.cc.o"
  "CMakeFiles/nova_baselines.dir/polygraph.cc.o.d"
  "libnova_baselines.a"
  "libnova_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
