# Empty dependencies file for sssp_roadnet.
# This may be replaced when dependencies are built.
