file(REMOVE_RECURSE
  "CMakeFiles/pagerank_social.dir/pagerank_social.cpp.o"
  "CMakeFiles/pagerank_social.dir/pagerank_social.cpp.o.d"
  "pagerank_social"
  "pagerank_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
