# Empty compiler generated dependencies file for pagerank_social.
# This may be replaced when dependencies are built.
