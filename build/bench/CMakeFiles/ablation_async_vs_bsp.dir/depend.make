# Empty dependencies file for ablation_async_vs_bsp.
# This may be replaced when dependencies are built.
