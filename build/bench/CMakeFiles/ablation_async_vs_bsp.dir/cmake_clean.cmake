file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_vs_bsp.dir/ablation_async_vs_bsp.cc.o"
  "CMakeFiles/ablation_async_vs_bsp.dir/ablation_async_vs_bsp.cc.o.d"
  "ablation_async_vs_bsp"
  "ablation_async_vs_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_vs_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
