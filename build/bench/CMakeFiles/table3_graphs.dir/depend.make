# Empty dependencies file for table3_graphs.
# This may be replaced when dependencies are built.
