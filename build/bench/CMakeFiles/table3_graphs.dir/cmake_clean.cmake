file(REMOVE_RECURSE
  "CMakeFiles/table3_graphs.dir/table3_graphs.cc.o"
  "CMakeFiles/table3_graphs.dir/table3_graphs.cc.o.d"
  "table3_graphs"
  "table3_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
