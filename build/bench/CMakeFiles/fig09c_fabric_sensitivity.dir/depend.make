# Empty dependencies file for fig09c_fabric_sensitivity.
# This may be replaced when dependencies are built.
