file(REMOVE_RECURSE
  "CMakeFiles/fig09c_fabric_sensitivity.dir/fig09c_fabric_sensitivity.cc.o"
  "CMakeFiles/fig09c_fabric_sensitivity.dir/fig09c_fabric_sensitivity.cc.o.d"
  "fig09c_fabric_sensitivity"
  "fig09c_fabric_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09c_fabric_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
