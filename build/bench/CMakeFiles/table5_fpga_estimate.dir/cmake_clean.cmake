file(REMOVE_RECURSE
  "CMakeFiles/table5_fpga_estimate.dir/table5_fpga_estimate.cc.o"
  "CMakeFiles/table5_fpga_estimate.dir/table5_fpga_estimate.cc.o.d"
  "table5_fpga_estimate"
  "table5_fpga_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fpga_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
