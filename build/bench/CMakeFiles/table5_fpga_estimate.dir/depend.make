# Empty dependencies file for table5_fpga_estimate.
# This may be replaced when dependencies are built.
