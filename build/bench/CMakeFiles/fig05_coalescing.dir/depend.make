# Empty dependencies file for fig05_coalescing.
# This may be replaced when dependencies are built.
