file(REMOVE_RECURSE
  "CMakeFiles/fig05_coalescing.dir/fig05_coalescing.cc.o"
  "CMakeFiles/fig05_coalescing.dir/fig05_coalescing.cc.o.d"
  "fig05_coalescing"
  "fig05_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
