# Empty compiler generated dependencies file for ablation_tracker_policy.
# This may be replaced when dependencies are built.
