
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_tracker_policy.cc" "bench/CMakeFiles/ablation_tracker_policy.dir/ablation_tracker_policy.cc.o" "gcc" "bench/CMakeFiles/ablation_tracker_policy.dir/ablation_tracker_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nova_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nova_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nova_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nova_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nova_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nova_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/nova_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
