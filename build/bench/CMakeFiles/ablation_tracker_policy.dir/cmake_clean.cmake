file(REMOVE_RECURSE
  "CMakeFiles/ablation_tracker_policy.dir/ablation_tracker_policy.cc.o"
  "CMakeFiles/ablation_tracker_policy.dir/ablation_tracker_policy.cc.o.d"
  "ablation_tracker_policy"
  "ablation_tracker_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracker_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
