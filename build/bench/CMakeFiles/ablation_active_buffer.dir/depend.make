# Empty dependencies file for ablation_active_buffer.
# This may be replaced when dependencies are built.
