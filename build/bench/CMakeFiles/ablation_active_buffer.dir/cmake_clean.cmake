file(REMOVE_RECURSE
  "CMakeFiles/ablation_active_buffer.dir/ablation_active_buffer.cc.o"
  "CMakeFiles/ablation_active_buffer.dir/ablation_active_buffer.cc.o.d"
  "ablation_active_buffer"
  "ablation_active_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_active_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
