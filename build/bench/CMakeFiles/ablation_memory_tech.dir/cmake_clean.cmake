file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_tech.dir/ablation_memory_tech.cc.o"
  "CMakeFiles/ablation_memory_tech.dir/ablation_memory_tech.cc.o.d"
  "ablation_memory_tech"
  "ablation_memory_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
