# Empty dependencies file for ablation_memory_tech.
# This may be replaced when dependencies are built.
