file(REMOVE_RECURSE
  "CMakeFiles/fig09a_cache_sensitivity.dir/fig09a_cache_sensitivity.cc.o"
  "CMakeFiles/fig09a_cache_sensitivity.dir/fig09a_cache_sensitivity.cc.o.d"
  "fig09a_cache_sensitivity"
  "fig09a_cache_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_cache_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
