# Empty compiler generated dependencies file for fig09a_cache_sensitivity.
# This may be replaced when dependencies are built.
