# Empty compiler generated dependencies file for projection_wdc12.
# This may be replaced when dependencies are built.
