file(REMOVE_RECURSE
  "CMakeFiles/projection_wdc12.dir/projection_wdc12.cc.o"
  "CMakeFiles/projection_wdc12.dir/projection_wdc12.cc.o.d"
  "projection_wdc12"
  "projection_wdc12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_wdc12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
