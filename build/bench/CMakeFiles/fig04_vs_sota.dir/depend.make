# Empty dependencies file for fig04_vs_sota.
# This may be replaced when dependencies are built.
