file(REMOVE_RECURSE
  "CMakeFiles/fig04_vs_sota.dir/fig04_vs_sota.cc.o"
  "CMakeFiles/fig04_vs_sota.dir/fig04_vs_sota.cc.o.d"
  "fig04_vs_sota"
  "fig04_vs_sota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_vs_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
