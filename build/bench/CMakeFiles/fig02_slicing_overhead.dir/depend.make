# Empty dependencies file for fig02_slicing_overhead.
# This may be replaced when dependencies are built.
