# Empty dependencies file for table4_wdc12_resources.
# This may be replaced when dependencies are built.
