file(REMOVE_RECURSE
  "CMakeFiles/table4_wdc12_resources.dir/table4_wdc12_resources.cc.o"
  "CMakeFiles/table4_wdc12_resources.dir/table4_wdc12_resources.cc.o.d"
  "table4_wdc12_resources"
  "table4_wdc12_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_wdc12_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
