# Empty compiler generated dependencies file for fig01_throughput_vs_size.
# This may be replaced when dependencies are built.
