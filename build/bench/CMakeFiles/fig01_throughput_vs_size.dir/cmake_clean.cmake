file(REMOVE_RECURSE
  "CMakeFiles/fig01_throughput_vs_size.dir/fig01_throughput_vs_size.cc.o"
  "CMakeFiles/fig01_throughput_vs_size.dir/fig01_throughput_vs_size.cc.o.d"
  "fig01_throughput_vs_size"
  "fig01_throughput_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_throughput_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
