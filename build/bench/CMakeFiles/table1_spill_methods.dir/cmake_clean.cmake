file(REMOVE_RECURSE
  "CMakeFiles/table1_spill_methods.dir/table1_spill_methods.cc.o"
  "CMakeFiles/table1_spill_methods.dir/table1_spill_methods.cc.o.d"
  "table1_spill_methods"
  "table1_spill_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_spill_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
