# Empty compiler generated dependencies file for table1_spill_methods.
# This may be replaced when dependencies are built.
