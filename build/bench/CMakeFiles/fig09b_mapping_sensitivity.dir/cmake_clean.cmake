file(REMOVE_RECURSE
  "CMakeFiles/fig09b_mapping_sensitivity.dir/fig09b_mapping_sensitivity.cc.o"
  "CMakeFiles/fig09b_mapping_sensitivity.dir/fig09b_mapping_sensitivity.cc.o.d"
  "fig09b_mapping_sensitivity"
  "fig09b_mapping_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_mapping_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
