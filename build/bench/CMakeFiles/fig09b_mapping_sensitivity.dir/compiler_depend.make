# Empty compiler generated dependencies file for fig09b_mapping_sensitivity.
# This may be replaced when dependencies are built.
