file(REMOVE_RECURSE
  "CMakeFiles/fig08_weak_scaling.dir/fig08_weak_scaling.cc.o"
  "CMakeFiles/fig08_weak_scaling.dir/fig08_weak_scaling.cc.o.d"
  "fig08_weak_scaling"
  "fig08_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
