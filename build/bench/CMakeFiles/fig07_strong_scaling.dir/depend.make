# Empty dependencies file for fig07_strong_scaling.
# This may be replaced when dependencies are built.
