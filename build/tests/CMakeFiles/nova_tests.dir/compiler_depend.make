# Empty compiler generated dependencies file for nova_tests.
# This may be replaced when dependencies are built.
