
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analytic.cc" "tests/CMakeFiles/nova_tests.dir/test_analytic.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_analytic.cc.o.d"
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/nova_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/nova_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/nova_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/nova_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/nova_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/nova_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/nova_tests.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_nova_smoke.cc" "tests/CMakeFiles/nova_tests.dir/test_nova_smoke.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_nova_smoke.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/nova_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_units.cc" "tests/CMakeFiles/nova_tests.dir/test_units.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_units.cc.o.d"
  "/root/repo/tests/test_vmu.cc" "tests/CMakeFiles/nova_tests.dir/test_vmu.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_vmu.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/nova_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/nova_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nova_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nova_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nova_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nova_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nova_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nova_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/nova_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
