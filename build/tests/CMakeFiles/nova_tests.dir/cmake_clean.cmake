file(REMOVE_RECURSE
  "CMakeFiles/nova_tests.dir/test_analytic.cc.o"
  "CMakeFiles/nova_tests.dir/test_analytic.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_baselines.cc.o"
  "CMakeFiles/nova_tests.dir/test_baselines.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_core.cc.o"
  "CMakeFiles/nova_tests.dir/test_core.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_extensions.cc.o"
  "CMakeFiles/nova_tests.dir/test_extensions.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_graph.cc.o"
  "CMakeFiles/nova_tests.dir/test_graph.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_integration.cc.o"
  "CMakeFiles/nova_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_mem.cc.o"
  "CMakeFiles/nova_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_noc.cc.o"
  "CMakeFiles/nova_tests.dir/test_noc.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_nova_smoke.cc.o"
  "CMakeFiles/nova_tests.dir/test_nova_smoke.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_sim.cc.o"
  "CMakeFiles/nova_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_units.cc.o"
  "CMakeFiles/nova_tests.dir/test_units.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_vmu.cc.o"
  "CMakeFiles/nova_tests.dir/test_vmu.cc.o.d"
  "CMakeFiles/nova_tests.dir/test_workloads.cc.o"
  "CMakeFiles/nova_tests.dir/test_workloads.cc.o.d"
  "nova_tests"
  "nova_tests.pdb"
  "nova_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
